//! Best-Response wiring (Definition 1).
//!
//! Choosing the `k` neighbors that minimize
//! `C_i = Σ_j p_ij · min_{w ∈ s_i} (d_iw + d_{G−i}(w, j))`
//! is an asymmetric k-median instance and NP-hard (§2.1), so EGOIST ships
//! two solvers:
//!
//! * **Exact** — exhaustive subset enumeration, used for validation and
//!   tiny instances (the ILP of \[21\] would solve the same instances).
//! * **Local search** — greedy seeding followed by best-improvement single
//!   swaps with best/second-best bookkeeping, the classic k-median local
//!   search (\[5\] in the paper). §4.1 reports the deployed heuristic lands
//!   "within 5% of optimal in the tested scenarios"; our test suite checks
//!   the same bound against the exact solver.

use super::{Policy, WiringContext};
use egoist_graph::NodeId;
use rand::rngs::StdRng;
use std::sync::OnceLock;

/// Obs counters for the optimized solve paths. All are pure functions
/// of the instance (no wall clock, no RNG), so they are identical
/// across runs of the same seed. Hot loops accumulate into locals and
/// flush with one atomic add per `greedy`/`local_search` call.
struct BrObs {
    scanned: egoist_obs::Counter,
    bound_rejects: egoist_obs::Counter,
    prefilter_rejects: egoist_obs::Counter,
    exact_evals: egoist_obs::Counter,
    eval_aborts: egoist_obs::Counter,
    rounds: egoist_obs::Counter,
}

fn br_obs() -> &'static BrObs {
    static OBS: OnceLock<BrObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        BrObs {
            scanned: r.counter("core.solver.candidates_scanned"),
            bound_rejects: r.counter("core.solver.gain_bound_rejects"),
            prefilter_rejects: r.counter("core.solver.prefilter_rejects"),
            exact_evals: r.counter("core.solver.exact_evals"),
            eval_aborts: r.counter("core.solver.eval_aborts"),
            rounds: r.counter("core.solver.rounds"),
        }
    })
}

/// Reusable backing storage for [`BrInstance`] — the assignment matrix
/// is `|cand| × |dests|` (≈ n² on full candidate pools), so allocating
/// it fresh every re-wiring turn put a dense-materialization floor under
/// the epoch engine. Solver policies own one arena and recycle it
/// across turns; contents never survive a build, so reuse cannot change
/// a decision.
#[derive(Default)]
pub struct BrArena {
    assign: Vec<f64>,
}

/// Assignment-cost instance for one node's best response.
///
/// `assign[c][t]` is the cost node `i` pays for destination `t` when
/// routing through candidate `c` as the first hop; the instance is built
/// once per re-wiring and shared by all solvers.
pub struct BrInstance {
    /// Candidate neighbor ids.
    pub cand: Vec<NodeId>,
    /// Destination ids (alive, ≠ i).
    pub dests: Vec<NodeId>,
    /// Preference weight per destination (aligned with `dests`).
    pub weight: Vec<f64>,
    /// `assign[c * dests.len() + t]`, clamped at `penalty`.
    assign: Vec<f64>,
    /// Disconnection penalty (upper bound of any assignment cost).
    pub penalty: f64,
}

impl BrInstance {
    /// Build the instance from a wiring context, allocating fresh
    /// storage (tests and one-shot callers).
    pub fn build(ctx: &WiringContext<'_>) -> BrInstance {
        Self::build_in(ctx, &mut BrArena::default())
    }

    /// Build the instance into `arena`'s recycled buffers — candidate
    /// rows are read straight through the residual view, and the
    /// assignment matrix reuses the arena's capacity, so a warmed-up
    /// engine allocates nothing per turn. Call [`Self::recycle`] when
    /// done to hand the storage back.
    pub fn build_in(ctx: &WiringContext<'_>, arena: &mut BrArena) -> BrInstance {
        let cand: Vec<NodeId> = ctx.candidates.to_vec();
        let dests: Vec<NodeId> = ctx
            .candidates
            .iter()
            .copied()
            .filter(|j| ctx.alive[j.index()])
            .collect();
        let weight: Vec<f64> = dests.iter().map(|&j| ctx.prefs.get(ctx.node, j)).collect();
        let nd = dests.len();
        let mut assign = std::mem::take(&mut arena.assign);
        assign.clear();
        assign.resize(cand.len() * nd, ctx.penalty);
        for (c, &w) in cand.iter().enumerate() {
            let d_iw = ctx.direct[w.index()];
            if !d_iw.is_finite() {
                continue;
            }
            let via_w = ctx.residual.row(w.index());
            for (t, &j) in dests.iter().enumerate() {
                let tail = if w == j { 0.0 } else { via_w[j.index()] };
                if tail.is_finite() {
                    assign[c * nd + t] = (d_iw + tail).min(ctx.penalty);
                }
            }
        }
        BrInstance {
            cand,
            dests,
            weight,
            assign,
            penalty: ctx.penalty,
        }
    }

    /// Return the instance's backing storage to `arena` for the next
    /// turn.
    pub fn recycle(self, arena: &mut BrArena) {
        arena.assign = self.assign;
    }

    #[inline]
    fn a(&self, c: usize, t: usize) -> f64 {
        self.assign[c * self.dests.len() + t]
    }

    /// The assignment cost of candidate `c` serving destination `t`
    /// (clamped at the penalty) — read-only probe for benches and tests.
    #[inline]
    pub fn assignment(&self, c: usize, t: usize) -> f64 {
        self.a(c, t)
    }

    /// Candidate `c`'s assignment row.
    #[inline]
    fn arow(&self, c: usize) -> &[f64] {
        let nd = self.dests.len();
        &self.assign[c * nd..(c + 1) * nd]
    }

    /// `Σ_t w_t · max(0, b2_t − a(c,t))` — the insertion-gain bound of
    /// candidate `c`, summed branchless over four accumulators so the
    /// compiler vectorizes it. The value is used *only* as a pruning
    /// bound behind a 1e-9 relative margin, so its summation order (and
    /// therefore its exact bits) is free.
    fn gain_row(&self, c: usize, b2: &[f64]) -> f64 {
        let w = &self.weight;
        let a = self.arow(c);
        let mut acc = [0.0f64; 4];
        for ((wc, bc), ac) in w
            .chunks_exact(4)
            .zip(b2.chunks_exact(4))
            .zip(a.chunks_exact(4))
        {
            acc[0] += wc[0] * (bc[0] - ac[0]).max(0.0);
            acc[1] += wc[1] * (bc[1] - ac[1]).max(0.0);
            acc[2] += wc[2] * (bc[2] - ac[2]).max(0.0);
            acc[3] += wc[3] * (bc[3] - ac[3]).max(0.0);
        }
        let mut rest = 0.0;
        for ((wt, bt), at) in w
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(b2.chunks_exact(4).remainder())
            .zip(a.chunks_exact(4).remainder())
        {
            rest += wt * (bt - at).max(0.0);
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + rest
    }

    /// Four-accumulator `Σ_t w_t · min(cap_t, a(c,t))` — the same sum
    /// the exact evaluations compute, in a different (vectorizable)
    /// order. Used only to prefilter: a candidate is skipped when even
    /// `approx − margin` cannot beat the incumbent, and every potential
    /// winner is re-evaluated in the exact reference order, so accepted
    /// results carry reference bits.
    fn approx_capped_cost(&self, c: usize, cap: &[f64]) -> f64 {
        let w = &self.weight;
        let a = self.arow(c);
        let mut acc = [0.0f64; 4];
        for ((wc, cc), ac) in w
            .chunks_exact(4)
            .zip(cap.chunks_exact(4))
            .zip(a.chunks_exact(4))
        {
            acc[0] += wc[0] * cc[0].min(ac[0]);
            acc[1] += wc[1] * cc[1].min(ac[1]);
            acc[2] += wc[2] * cc[2].min(ac[2]);
            acc[3] += wc[3] * cc[3].min(ac[3]);
        }
        let mut rest = 0.0;
        for ((wt, ct), at) in w
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(cap.chunks_exact(4).remainder())
            .zip(a.chunks_exact(4).remainder())
        {
            rest += wt * ct.min(*at);
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + rest
    }

    /// Cost of a candidate subset (indices into `cand`).
    pub fn eval(&self, subset: &[usize]) -> f64 {
        let nd = self.dests.len();
        let mut total = 0.0;
        for t in 0..nd {
            let mut best = self.penalty;
            for &c in subset {
                let v = self.a(c, t);
                if v < best {
                    best = v;
                }
            }
            total += self.weight[t] * best;
        }
        total
    }

    /// Greedy seeding: repeatedly add the candidate with the largest
    /// marginal cost reduction. `forced` members are taken first.
    ///
    /// Decision-identical micro-opts over [`Self::greedy_reference`]
    /// (asserted by tests):
    /// * membership is a boolean mask instead of `Vec::contains` — the
    ///   candidate loop runs `O(k · |cand|)` membership probes and a
    ///   linear scan per probe dominates once `|cand|` reaches the
    ///   hundreds (see the `membership_mask` criterion group);
    /// * each candidate is prefiltered by a vectorized approximation of
    ///   its cost ([`Self::approx_capped_cost`]): the exact sum differs
    ///   from the approximation only by summation-order rounding
    ///   (≤ ~1e-13 relative), so `approx − margin ≥ pick_cost` with a
    ///   1e-9 relative margin proves the candidate cannot *strictly*
    ///   beat the incumbent and is skipped;
    /// * survivors are accumulated in the identical reference order
    ///   (aborting once the partial sum reaches the incumbent — terms
    ///   are non-negative), so picks and their costs are bit-identical.
    pub fn greedy(&self, k: usize, forced: &[usize]) -> Vec<usize> {
        let nd = self.dests.len();
        let mut chosen: Vec<usize> = forced.to_vec();
        let mut in_chosen = vec![false; self.cand.len()];
        for &c in forced {
            in_chosen[c] = true;
        }
        let mut best_per_dest = vec![self.penalty; nd];
        for &c in forced {
            for (t, b) in best_per_dest.iter_mut().enumerate() {
                *b = b.min(self.a(c, t));
            }
        }
        let (mut scanned, mut prefilter_rejects, mut exact_evals, mut eval_aborts) =
            (0u64, 0u64, 0u64, 0u64);
        while chosen.len() < k.min(self.cand.len()) {
            let mut pick = None;
            let mut pick_cost = f64::INFINITY;
            for (c, _) in in_chosen.iter().enumerate().filter(|(_, &taken)| !taken) {
                scanned += 1;
                if pick_cost.is_finite() {
                    let approx = self.approx_capped_cost(c, &best_per_dest);
                    if approx - 1e-9 * (approx + 1.0) >= pick_cost {
                        prefilter_rejects += 1;
                        continue; // provably cannot strictly win
                    }
                }
                exact_evals += 1;
                let mut cost = 0.0;
                let mut aborted = false;
                for (t, (&w, &best)) in self.weight.iter().zip(best_per_dest.iter()).enumerate() {
                    cost += w * best.min(self.a(c, t));
                    if cost >= pick_cost {
                        aborted = true;
                        break;
                    }
                }
                if aborted {
                    eval_aborts += 1;
                } else if cost < pick_cost {
                    pick_cost = cost;
                    pick = Some(c);
                }
            }
            let Some(c) = pick else { break };
            chosen.push(c);
            in_chosen[c] = true;
            for (t, b) in best_per_dest.iter_mut().enumerate() {
                *b = b.min(self.a(c, t));
            }
        }
        let obs = br_obs();
        obs.scanned.add(scanned);
        obs.prefilter_rejects.add(prefilter_rejects);
        obs.exact_evals.add(exact_evals);
        obs.eval_aborts.add(eval_aborts);
        chosen
    }

    /// The pre-optimization greedy, kept verbatim as the timing
    /// reference for the `Recompute` oracle and the criterion benches.
    pub fn greedy_reference(&self, k: usize, forced: &[usize]) -> Vec<usize> {
        let nd = self.dests.len();
        let mut chosen: Vec<usize> = forced.to_vec();
        let mut best_per_dest = vec![self.penalty; nd];
        for &c in forced {
            for (t, b) in best_per_dest.iter_mut().enumerate() {
                *b = b.min(self.a(c, t));
            }
        }
        while chosen.len() < k.min(self.cand.len()) {
            let mut pick = None;
            let mut pick_cost = f64::INFINITY;
            for c in 0..self.cand.len() {
                if chosen.contains(&c) {
                    continue;
                }
                let mut cost = 0.0;
                for (t, (&w, &best)) in self.weight.iter().zip(best_per_dest.iter()).enumerate() {
                    cost += w * best.min(self.a(c, t));
                }
                if cost < pick_cost {
                    pick_cost = cost;
                    pick = Some(c);
                }
            }
            let Some(c) = pick else { break };
            chosen.push(c);
            for (t, b) in best_per_dest.iter_mut().enumerate() {
                *b = b.min(self.a(c, t));
            }
        }
        chosen
    }

    /// Best-improvement single-swap local search starting from `init`.
    /// `forced` members are never swapped out. Returns the subset and its
    /// cost.
    ///
    /// The swap scan is the epoch-stepping hot spot (`O(k · |cand| ·
    /// |dests|)` per round in [`Self::local_search_reference`]), so this
    /// version prunes it in three sound layers:
    ///
    /// * **Insertion-gain bound.** A swap inserting `inn` can reduce the
    ///   cost by at most `G(inn) = Σ_t w_t · max(0, b2_t − a(inn, t))`
    ///   (the surviving assignment never exceeds the second-best
    ///   `b2_t`), so any pair with `base(out) − G(inn) ⪆ threshold` is
    ///   skipped without evaluation. The bound is maintained
    ///   *incrementally*: a swap changes `b2` at only the destinations
    ///   the swapped pair served, so later rounds patch `G` on that
    ///   changed set (`O(|cand| · |changed|)`) instead of re-deriving
    ///   all `|cand| · |dests|` terms; the candidate freed by the swap
    ///   is re-derived in full. The patched bound equals the re-derived
    ///   one up to summation-order rounding.
    /// * **Vectorized eval prefilter.** Pairs surviving the bound get a
    ///   branchless four-lane approximation of their exact cost
    ///   ([`Self::approx_capped_cost`]); `approx − margin ≥ threshold`
    ///   proves the exact evaluation would have aborted.
    /// * **Exact evaluation.** Survivors are accumulated in exactly the
    ///   reference order (aborting once the partial sum crosses the
    ///   threshold — terms are non-negative), so accepted swaps, their
    ///   costs, and the whole trajectory are bit-identical to the
    ///   reference: both filters only discard pairs provably unable to
    ///   *strictly* beat the incumbent, by 1e-9 relative margins that
    ///   dwarf every accumulated rounding term (≤ ~1e-13 relative).
    ///   Tests and the golden equivalence suite pin the equality.
    pub fn local_search(
        &self,
        k: usize,
        init: Vec<usize>,
        forced: &[usize],
        max_rounds: usize,
    ) -> (Vec<usize>, f64) {
        let nd = self.dests.len();
        let nc = self.cand.len();
        let mut subset = init;
        subset.sort_unstable();
        subset.dedup();
        let mut cost = self.eval(&subset);
        if subset.len() < k.min(nc) {
            subset = self.greedy(k, &subset);
            cost = self.eval(&subset);
        }
        // Reusable membership masks (see `greedy` for the rationale).
        let mut in_subset = vec![false; nc];
        for &c in &subset {
            in_subset[c] = true;
        }
        let mut is_forced = vec![false; nc];
        for &c in forced {
            is_forced[c] = true;
        }
        let mut gain_bound = vec![0.0f64; nc];
        let mut surviving = vec![0.0f64; nd];
        let mut prev_b2: Vec<f64> = Vec::new();
        let mut changed: Vec<usize> = Vec::new();
        // Candidate freed by the previous round's swap (its bound is
        // stale since it sat inside the subset).
        let mut freed: Option<usize> = None;
        let (mut rounds, mut scanned, mut bound_rejects) = (0u64, 0u64, 0u64);
        let (mut prefilter_rejects, mut exact_evals, mut eval_aborts) = (0u64, 0u64, 0u64);

        for _ in 0..max_rounds {
            rounds += 1;
            // best1/best2 assignment per destination.
            let mut b1 = vec![(self.penalty, usize::MAX); nd]; // (cost, cand)
            let mut b2 = vec![self.penalty; nd];
            for &c in &subset {
                for t in 0..nd {
                    let v = self.a(c, t);
                    if v < b1[t].0 {
                        b2[t] = b1[t].0;
                        b1[t] = (v, c);
                    } else if v < b2[t] {
                        b2[t] = v;
                    }
                }
            }
            // Upper bound on any insertion's gain, independent of `out`.
            if prev_b2.is_empty() {
                for (inn, g) in gain_bound.iter_mut().enumerate() {
                    if !in_subset[inn] {
                        *g = self.gain_row(inn, &b2);
                    }
                }
                prev_b2 = b2.clone();
            } else {
                changed.clear();
                for t in 0..nd {
                    if prev_b2[t].to_bits() != b2[t].to_bits() {
                        changed.push(t);
                    }
                }
                if changed.len() * 4 >= nd {
                    // Dense change: a full re-derive is cheaper.
                    for (inn, g) in gain_bound.iter_mut().enumerate() {
                        if !in_subset[inn] {
                            *g = self.gain_row(inn, &b2);
                        }
                    }
                } else {
                    for (inn, g) in gain_bound.iter_mut().enumerate() {
                        if in_subset[inn] || freed == Some(inn) {
                            continue;
                        }
                        // Patch the bound on the changed destinations,
                        // inflating by 1e-12 of the term magnitude: the
                        // patch's rounding error is ≤ ~1e-14 of it, so
                        // the bound can only drift *upward* (safe side)
                        // across rounds.
                        let (mut plus, mut minus) = (0.0f64, 0.0f64);
                        for &t in &changed {
                            let a = self.a(inn, t);
                            plus += self.weight[t] * (b2[t] - a).max(0.0);
                            minus += self.weight[t] * (prev_b2[t] - a).max(0.0);
                        }
                        *g += (plus - minus) + 1e-12 * (plus + minus);
                    }
                    if let Some(f) = freed {
                        gain_bound[f] = self.gain_row(f, &b2);
                    }
                }
                prev_b2.copy_from_slice(&b2);
            }

            let mut best_swap: Option<(usize, usize, f64)> = None; // (out, in, new_cost)
            for &out in &subset {
                if is_forced[out] {
                    continue;
                }
                // The assignment that survives dropping `out`, plus its
                // total — the swap's cost before `inn` helps anywhere.
                let mut base = 0.0;
                for t in 0..nd {
                    surviving[t] = if b1[t].1 == out { b2[t] } else { b1[t].0 };
                    base += self.weight[t] * surviving[t];
                }
                for inn in 0..nc {
                    if in_subset[inn] {
                        continue;
                    }
                    scanned += 1;
                    let threshold = match best_swap {
                        Some((_, _, c)) => c.min(cost - 1e-12),
                        None => cost - 1e-12,
                    };
                    // Margin: ~1e-9 relative dwarfs f64 summation error
                    // (≤ |dests| · ε ≈ 1e-13 relative) while pruning
                    // everything that is not a near-tie.
                    let margin = 1e-9 * (base + gain_bound[inn] + 1.0);
                    if base - gain_bound[inn] >= threshold + margin {
                        bound_rejects += 1;
                        continue;
                    }
                    let approx = self.approx_capped_cost(inn, &surviving);
                    if approx - 1e-9 * (approx + 1.0) >= threshold {
                        prefilter_rejects += 1;
                        continue; // the exact eval would have aborted
                    }
                    exact_evals += 1;
                    let mut new_cost = 0.0;
                    let mut aborted = false;
                    for (t, (&w, &surv)) in self.weight.iter().zip(surviving.iter()).enumerate() {
                        new_cost += w * surv.min(self.a(inn, t));
                        if new_cost >= threshold {
                            aborted = true;
                            break;
                        }
                    }
                    if aborted {
                        eval_aborts += 1;
                    }
                    if !aborted
                        && new_cost < cost - 1e-12
                        && best_swap.map(|(_, _, c)| new_cost < c).unwrap_or(true)
                    {
                        best_swap = Some((out, inn, new_cost));
                    }
                }
            }
            match best_swap {
                Some((out, inn, new_cost)) => {
                    subset.retain(|&c| c != out);
                    subset.push(inn);
                    in_subset[out] = false;
                    in_subset[inn] = true;
                    freed = Some(out);
                    cost = new_cost;
                }
                None => break,
            }
        }
        let obs = br_obs();
        obs.rounds.add(rounds);
        obs.scanned.add(scanned);
        obs.bound_rejects.add(bound_rejects);
        obs.prefilter_rejects.add(prefilter_rejects);
        obs.exact_evals.add(exact_evals);
        obs.eval_aborts.add(eval_aborts);
        (subset, cost)
    }

    /// The pre-optimization local search, kept verbatim: the timing
    /// reference the `Recompute` oracle runs so `perf_baseline`'s
    /// `baseline_wall_ms` measures what this repo shipped before the
    /// epoch route-state engine. Bit-identical results to
    /// [`Self::local_search`] (tests assert it).
    pub fn local_search_reference(
        &self,
        k: usize,
        init: Vec<usize>,
        forced: &[usize],
        max_rounds: usize,
    ) -> (Vec<usize>, f64) {
        let nd = self.dests.len();
        let mut subset = init;
        subset.sort_unstable();
        subset.dedup();
        let mut cost = self.eval(&subset);
        if subset.len() < k.min(self.cand.len()) {
            subset = self.greedy_reference(k, &subset);
            cost = self.eval(&subset);
        }

        for _ in 0..max_rounds {
            let mut b1 = vec![(self.penalty, usize::MAX); nd];
            let mut b2 = vec![self.penalty; nd];
            for &c in &subset {
                for t in 0..nd {
                    let v = self.a(c, t);
                    if v < b1[t].0 {
                        b2[t] = b1[t].0;
                        b1[t] = (v, c);
                    } else if v < b2[t] {
                        b2[t] = v;
                    }
                }
            }

            let mut best_swap: Option<(usize, usize, f64)> = None;
            for &out in &subset {
                if forced.contains(&out) {
                    continue;
                }
                for inn in 0..self.cand.len() {
                    if subset.contains(&inn) {
                        continue;
                    }
                    let mut new_cost = 0.0;
                    for t in 0..nd {
                        let surviving = if b1[t].1 == out { b2[t] } else { b1[t].0 };
                        new_cost += self.weight[t] * surviving.min(self.a(inn, t));
                    }
                    if new_cost < cost - 1e-12
                        && best_swap.map(|(_, _, c)| new_cost < c).unwrap_or(true)
                    {
                        best_swap = Some((out, inn, new_cost));
                    }
                }
            }
            match best_swap {
                Some((out, inn, new_cost)) => {
                    subset.retain(|&c| c != out);
                    subset.push(inn);
                    cost = new_cost;
                }
                None => break,
            }
        }
        (subset, cost)
    }

    /// Exhaustive optimum over all `C(|cand|, k)` subsets containing
    /// `forced`. Returns `None` when the enumeration would exceed
    /// `budget` subsets.
    pub fn exhaustive(&self, k: usize, forced: &[usize], budget: u64) -> Option<(Vec<usize>, f64)> {
        let k = k.min(self.cand.len());
        let free: Vec<usize> = (0..self.cand.len())
            .filter(|c| !forced.contains(c))
            .collect();
        let pick = k.saturating_sub(forced.len());
        if combinations(free.len() as u64, pick as u64) > budget {
            return None;
        }
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut subset: Vec<usize> = forced.to_vec();
        self.enumerate(&free, pick, 0, &mut subset, &mut best);
        best
    }

    fn enumerate(
        &self,
        free: &[usize],
        remaining: usize,
        start: usize,
        subset: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if remaining == 0 {
            let c = self.eval(subset);
            if best.as_ref().map(|(_, bc)| c < *bc).unwrap_or(true) {
                *best = Some((subset.clone(), c));
            }
            return;
        }
        for idx in start..free.len() {
            if free.len() - idx < remaining {
                break;
            }
            subset.push(free[idx]);
            self.enumerate(free, remaining - 1, idx + 1, subset, best);
            subset.pop();
        }
    }

    /// Map candidate indices back to node ids.
    pub fn to_nodes(&self, subset: &[usize]) -> Vec<NodeId> {
        subset.iter().map(|&c| self.cand[c]).collect()
    }
}

fn combinations(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
        if acc > 1 << 60 {
            return u64::MAX;
        }
    }
    acc
}

/// The Best-Response policy object.
pub struct BestResponse {
    exact: bool,
    /// Run the pre-optimization reference solver loops (the `Recompute`
    /// oracle's timing-faithful mode). Results are bit-identical either
    /// way.
    pub reference: bool,
    /// Maximum local-search rounds.
    pub max_rounds: usize,
    /// Enumeration budget for the exact solver.
    pub exact_budget: u64,
    /// Relative hysteresis: keep the current wiring unless the best found
    /// wiring improves on it by more than this fraction. Best-response
    /// dynamics with an *approximate* solver can limit-cycle on near-ties
    /// (different local optima of almost equal cost); a tiny dead band
    /// restores the convergence the exact game has (\[20\]'s equilibria)
    /// without measurably changing cost.
    pub hysteresis: f64,
    /// Recycled assignment-matrix storage (no per-turn allocation).
    arena: BrArena,
}

impl BestResponse {
    /// Local-search solver (the deployed default).
    ///
    /// The 1% hysteresis models the real system's measurement noise
    /// floor: ping-averaged costs cannot resolve sub-percent differences,
    /// so the deployed EGOIST never re-wired for gains that small either.
    pub fn local_search() -> Self {
        BestResponse {
            exact: false,
            reference: false,
            max_rounds: 64,
            exact_budget: 0,
            hysteresis: 0.01,
            arena: BrArena::default(),
        }
    }

    /// Exhaustive solver; falls back to local search above the budget.
    pub fn exact() -> Self {
        BestResponse {
            exact: true,
            reference: false,
            max_rounds: 64,
            exact_budget: 2_000_000,
            hysteresis: 0.0,
            arena: BrArena::default(),
        }
    }

    /// Flip this solver into reference (pre-optimization) mode.
    pub fn with_reference(mut self, reference: bool) -> Self {
        self.reference = reference;
        self
    }

    fn run_local_search(&self, inst: &BrInstance, k: usize, init: Vec<usize>) -> (Vec<usize>, f64) {
        if self.reference {
            inst.local_search_reference(k, init, &[], self.max_rounds)
        } else {
            inst.local_search(k, init, &[], self.max_rounds)
        }
    }

    /// Solve and return (neighbors, cost).
    pub fn solve(&mut self, ctx: &WiringContext<'_>) -> (Vec<NodeId>, f64) {
        let inst = BrInstance::build_in(ctx, &mut self.arena);
        let k = ctx.effective_k();
        // Current wiring (alive members only) as candidate indices.
        let init: Vec<usize> = ctx
            .current
            .iter()
            .filter_map(|w| inst.cand.iter().position(|&c| c == *w))
            .collect();

        let (best_set, best_cost) = if self.exact {
            match inst.exhaustive(k, &[], self.exact_budget) {
                Some(r) => r,
                None => self.run_local_search(&inst, k, init.clone()),
            }
        } else {
            // Seed local search from both the current wiring and greedy;
            // take the cheaper result.
            let greedy = if self.reference {
                inst.greedy_reference(k, &[])
            } else {
                inst.greedy(k, &[])
            };
            let (s1, c1) = self.run_local_search(&inst, k, init.clone());
            let (s2, c2) = self.run_local_search(&inst, k, greedy);
            if c1 <= c2 {
                (s1, c1)
            } else {
                (s2, c2)
            }
        };

        // Hysteresis: a full current wiring is kept unless beaten clearly.
        let result = if self.hysteresis > 0.0 && init.len() == k {
            let current_cost = inst.eval(&init);
            if best_cost >= current_cost * (1.0 - self.hysteresis) {
                (inst.to_nodes(&init), current_cost)
            } else {
                (inst.to_nodes(&best_set), best_cost)
            }
        } else {
            (inst.to_nodes(&best_set), best_cost)
        };
        inst.recycle(&mut self.arena);
        result
    }
}

impl Policy for BestResponse {
    fn wire(&mut self, ctx: &WiringContext<'_>, _rng: &mut StdRng) -> Vec<NodeId> {
        self.solve(ctx).0
    }

    fn name(&self) -> &'static str {
        if self.exact {
            "BR-exact"
        } else {
            "BR"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::CtxParts;
    use crate::wiring::Wiring;
    use egoist_graph::{DistanceMatrix, NodeId};

    /// A 5-node metric where node 0's best single neighbor is the hub.
    fn hub_matrix() -> DistanceMatrix {
        // Node 1 is a hub: cheap to everyone. Others expensive directly.
        DistanceMatrix::from_fn(5, |i, j| if i == 1 || j == 1 { 1.0 } else { 10.0 })
    }

    fn ring_wiring(n: usize) -> Wiring {
        let mut w = Wiring::empty(n);
        for i in 0..n {
            w.rewire(NodeId::from_index(i), vec![NodeId::from_index((i + 1) % n)]);
        }
        w
    }

    #[test]
    fn br_prefers_the_hub() {
        let d = hub_matrix();
        let w = ring_wiring(5);
        let parts = CtxParts::build(&d, &w, NodeId(0), 1);
        let (neighbors, _) = BestResponse::local_search().solve(&parts.ctx());
        assert_eq!(neighbors, vec![NodeId(1)], "hub must be chosen at k=1");
    }

    #[test]
    fn exact_matches_local_search_on_small_instances() {
        // Pseudo-random but deterministic metric.
        let d = DistanceMatrix::from_fn(9, |i, j| ((i * 7 + j * 13) % 23 + 1) as f64);
        let w = ring_wiring(9);
        for k in 1..4 {
            let parts = CtxParts::build(&d, &w, NodeId(0), k);
            let ctx = parts.ctx();
            let (_, c_exact) = BestResponse::exact().solve(&ctx);
            let (_, c_ls) = BestResponse::local_search().solve(&ctx);
            assert!(
                c_ls <= c_exact * 1.05 + 1e-9,
                "k={k}: local search {c_ls} should be within 5% of optimal {c_exact}"
            );
            assert!(c_exact <= c_ls + 1e-9, "exact can never be worse");
        }
    }

    #[test]
    fn cost_decreases_with_k() {
        let d = DistanceMatrix::from_fn(10, |i, j| ((i * 3 + j * 5) % 17 + 1) as f64);
        let w = ring_wiring(10);
        let mut prev = f64::INFINITY;
        for k in 1..6 {
            let parts = CtxParts::build(&d, &w, NodeId(2), k);
            let (_, c) = BestResponse::local_search().solve(&parts.ctx());
            assert!(
                c <= prev + 1e-9,
                "more links can't hurt: k={k}, {c} > {prev}"
            );
            prev = c;
        }
    }

    #[test]
    fn returns_exactly_k_distinct_neighbors() {
        let d = DistanceMatrix::from_fn(8, |i, j| ((i + 2 * j) % 9 + 1) as f64);
        let w = ring_wiring(8);
        let parts = CtxParts::build(&d, &w, NodeId(3), 4);
        let (neigh, _) = BestResponse::local_search().solve(&parts.ctx());
        assert_eq!(neigh.len(), 4);
        let mut s = neigh.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
        assert!(!neigh.contains(&NodeId(3)));
    }

    #[test]
    fn k_larger_than_population_is_clamped() {
        let d = DistanceMatrix::off_diagonal(4, 1.0);
        let w = ring_wiring(4);
        let parts = CtxParts::build(&d, &w, NodeId(0), 10);
        let (neigh, _) = BestResponse::local_search().solve(&parts.ctx());
        assert_eq!(neigh.len(), 3);
    }

    #[test]
    fn stable_under_repeated_solve() {
        // Solving twice from the resulting wiring must not flip-flop.
        let d = DistanceMatrix::from_fn(12, |i, j| ((i * 11 + j * 3) % 19 + 1) as f64);
        let mut w = ring_wiring(12);
        let parts = CtxParts::build(&d, &w, NodeId(5), 3);
        let (n1, c1) = BestResponse::local_search().solve(&parts.ctx());
        w.rewire(NodeId(5), n1.clone());
        let parts2 = CtxParts::build(&d, &w, NodeId(5), 3);
        let (n2, c2) = BestResponse::local_search().solve(&parts2.ctx());
        let mut a = n1.clone();
        let mut b = n2.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "re-solve changed wiring: {c1} → {c2}");
    }

    #[test]
    fn unreachable_destinations_attract_direct_links() {
        // Node 3 is reachable by nobody in the residual: BR must link to it
        // directly (the §4.4 healing incentive), because the penalty
        // dominates.
        let mut d = DistanceMatrix::off_diagonal(5, 5.0);
        d.set(NodeId(0), NodeId(3), 50.0); // even an expensive direct link wins
        let mut w = Wiring::empty(5);
        // Others form a ring that excludes node 3 entirely.
        w.rewire(NodeId(1), vec![NodeId(2)]);
        w.rewire(NodeId(2), vec![NodeId(4)]);
        w.rewire(NodeId(4), vec![NodeId(1)]);
        let parts = CtxParts::build(&d, &w, NodeId(0), 2);
        let (neigh, _) = BestResponse::local_search().solve(&parts.ctx());
        assert!(
            neigh.contains(&NodeId(3)),
            "BR must reconnect the isolated node, got {neigh:?}"
        );
    }

    /// A deterministic, irregular instance large enough to exercise the
    /// pruned scan, the abort paths and multi-round swap chains.
    fn scrambled_instance(n: usize, seed: usize) -> (DistanceMatrix, Wiring) {
        let d = DistanceMatrix::from_fn(n, |i, j| {
            ((i * 13 + j * 7 + seed * 31) % 83 + 1) as f64 * 0.25
        });
        let mut w = Wiring::empty(n);
        for i in 0..n {
            let neigh: Vec<NodeId> = (1..4)
                .map(|o| NodeId::from_index((i + o * (seed + 2)) % n))
                .filter(|x| x.index() != i)
                .collect();
            w.rewire(NodeId::from_index(i), neigh);
        }
        (d, w)
    }

    #[test]
    fn optimized_solvers_match_reference_bitwise() {
        for seed in 0..6 {
            for (n, k) in [(15usize, 3usize), (30, 5), (48, 7)] {
                let (d, w) = scrambled_instance(n, seed);
                let parts = CtxParts::build(&d, &w, NodeId::from_index(seed % n), k);
                let ctx = parts.ctx();
                let inst = BrInstance::build(&ctx);

                let g_opt = inst.greedy(k, &[]);
                let g_ref = inst.greedy_reference(k, &[]);
                assert_eq!(g_opt, g_ref, "greedy diverged (n={n}, k={k}, seed={seed})");

                let current_init: Vec<usize> = parts
                    .current
                    .iter()
                    .filter_map(|w| inst.cand.iter().position(|&c| c == *w))
                    .collect();
                for init in [Vec::new(), g_opt.clone(), current_init] {
                    let (s_opt, c_opt) = inst.local_search(k, init.clone(), &[], 64);
                    let (s_ref, c_ref) = inst.local_search_reference(k, init, &[], 64);
                    let mut a = s_opt.clone();
                    let mut b = s_ref.clone();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "subset diverged (n={n}, k={k}, seed={seed})");
                    assert_eq!(
                        c_opt.to_bits(),
                        c_ref.to_bits(),
                        "cost bits diverged (n={n}, k={k}, seed={seed}): {c_opt} vs {c_ref}"
                    );
                }
            }
        }
    }

    #[test]
    fn optimized_solvers_match_reference_with_forced_members() {
        let (d, w) = scrambled_instance(24, 3);
        let parts = CtxParts::build(&d, &w, NodeId(1), 5);
        let inst = BrInstance::build(&parts.ctx());
        let forced = [2usize, 9];
        let g_opt = inst.greedy(5, &forced);
        let g_ref = inst.greedy_reference(5, &forced);
        assert_eq!(g_opt, g_ref);
        let (s_opt, c_opt) = inst.local_search(5, g_opt, &forced, 64);
        let (s_ref, c_ref) = inst.local_search_reference(5, g_ref, &forced, 64);
        let mut a = s_opt;
        let mut b = s_ref;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(c_opt.to_bits(), c_ref.to_bits());
    }

    #[test]
    fn combinations_helper() {
        assert_eq!(super::combinations(5, 2), 10);
        assert_eq!(super::combinations(49, 3), 18424);
        assert_eq!(super::combinations(3, 5), 0);
    }

    #[test]
    fn greedy_respects_forced_members() {
        let d = DistanceMatrix::from_fn(6, |i, j| ((i + j) % 5 + 1) as f64);
        let w = ring_wiring(6);
        let parts = CtxParts::build(&d, &w, NodeId(0), 3);
        let inst = BrInstance::build(&parts.ctx());
        let g = inst.greedy(3, &[4]);
        assert!(g.contains(&4));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn local_search_never_swaps_forced() {
        let d = DistanceMatrix::from_fn(7, |i, j| ((2 * i + j) % 6 + 1) as f64);
        let w = ring_wiring(7);
        let parts = CtxParts::build(&d, &w, NodeId(0), 3);
        let inst = BrInstance::build(&parts.ctx());
        let (s, _) = inst.local_search(3, vec![2], &[2], 32);
        assert!(s.contains(&2));
    }
}
