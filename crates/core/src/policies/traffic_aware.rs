//! Traffic-aware wiring: demand-blended preference rows.
//!
//! The EGOIST cost model already supports non-uniform preferences
//! (`C_i = Σ p_ij · d_ij`, §4.2: "skew only helps BR"). The
//! traffic-aware policy exploits that hook instead of inventing a new
//! solver: the simulator feeds it the *observed* demand matrix (an EWMA
//! over routed epochs), this module turns each row into a probability
//! distribution and mixes it into the base preferences with weight
//! `bias`, and the ordinary local-search best response runs over the
//! blended rows. Destinations carrying real traffic thus pull direct
//! links toward themselves, shortening exactly the paths the data plane
//! uses.

use crate::cost::Preferences;

/// Blend base preferences with a dense row-major demand matrix.
///
/// For each source `i` with total outgoing demand `T_i = Σ_{j≠i} D_ij`:
///
/// ```text
/// p'_ij = (1 − bias) · p_ij + bias · D_ij / T_i
/// ```
///
/// Rows with no observed demand (`T_i ≤ 0`) keep their base row
/// unchanged, so cold-start epochs wire exactly like plain BR. `bias`
/// is clamped to `[0, 1]`; the diagonal is forced to zero. Row sums are
/// preserved whenever the base row sums to 1 (both mixed terms are
/// distributions), so cost magnitudes stay comparable across policies.
pub fn demand_weighted_prefs(
    base: &Preferences,
    demand: &[f64],
    bias: f64,
    n: usize,
) -> Preferences {
    assert_eq!(base.len(), n, "preference size must match n");
    assert_eq!(demand.len(), n * n, "demand must be dense n×n");
    let bias = bias.clamp(0.0, 1.0);
    let mut weights = vec![0.0; n * n];
    for i in 0..n {
        let row = base.row(i);
        let total: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| demand[i * n + j].max(0.0))
            .sum();
        for j in 0..n {
            if j == i {
                continue;
            }
            weights[i * n + j] = if total > 0.0 {
                (1.0 - bias) * row[j] + bias * demand[i * n + j].max(0.0) / total
            } else {
                row[j]
            };
        }
    }
    Preferences::from_weights(n, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egoist_graph::NodeId;

    #[test]
    fn zero_demand_keeps_base_rows() {
        let base = Preferences::uniform(4);
        let blended = demand_weighted_prefs(&base, &[0.0; 16], 0.8, 4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i == j {
                    continue; // the blend zeroes the (ignored) diagonal
                }
                assert_eq!(
                    blended.get(NodeId(i), NodeId(j)),
                    base.get(NodeId(i), NodeId(j))
                );
            }
        }
    }

    #[test]
    fn hot_destination_gains_weight() {
        let n = 4;
        let base = Preferences::uniform(n);
        let mut demand = vec![0.0; n * n];
        demand[2] = 90.0; // 0 → 2 is hot
        demand[1] = 10.0; // 0 → 1 is lukewarm
        let blended = demand_weighted_prefs(&base, &demand, 0.5, n);
        let uniform = 1.0 / 3.0;
        let hot = blended.get(NodeId(0), NodeId(2));
        let warm = blended.get(NodeId(0), NodeId(1));
        let cold = blended.get(NodeId(0), NodeId(3));
        assert!((hot - (0.5 * uniform + 0.5 * 0.9)).abs() < 1e-12);
        assert!((warm - (0.5 * uniform + 0.5 * 0.1)).abs() < 1e-12);
        assert!((cold - 0.5 * uniform).abs() < 1e-12);
        // Row 1 saw no demand: untouched.
        assert_eq!(blended.get(NodeId(1), NodeId(0)), uniform);
        // Row sum preserved.
        let sum: f64 = (0..n)
            .filter(|&j| j != 0)
            .map(|j| blended.get(NodeId(0), NodeId(j as u32)))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bias_one_is_pure_demand_bias_zero_is_base() {
        let n = 3;
        let base = Preferences::uniform(n);
        let mut demand = vec![0.0; n * n];
        demand[1] = 5.0;
        demand[2] = 15.0;
        let pure = demand_weighted_prefs(&base, &demand, 1.0, n);
        assert!((pure.get(NodeId(0), NodeId(1)) - 0.25).abs() < 1e-12);
        assert!((pure.get(NodeId(0), NodeId(2)) - 0.75).abs() < 1e-12);
        let none = demand_weighted_prefs(&base, &demand, 0.0, n);
        assert_eq!(none.get(NodeId(0), NodeId(1)), 0.5);
        // Out-of-range bias clamps rather than extrapolating.
        let clamped = demand_weighted_prefs(&base, &demand, 2.5, n);
        assert_eq!(
            clamped.get(NodeId(0), NodeId(2)),
            pure.get(NodeId(0), NodeId(2))
        );
    }

    #[test]
    fn negative_demand_entries_are_ignored() {
        let n = 3;
        let base = Preferences::uniform(n);
        let mut demand = vec![0.0; n * n];
        demand[1] = -8.0;
        demand[2] = 10.0;
        let blended = demand_weighted_prefs(&base, &demand, 1.0, n);
        assert_eq!(blended.get(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(blended.get(NodeId(0), NodeId(2)), 1.0);
    }
}
