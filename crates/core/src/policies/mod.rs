//! Neighbor-selection policies (§3.2, §3.3).
//!
//! Every policy answers the same question: *given the residual overlay and
//! my measured direct link costs, which `k` neighbors do I wire to?*
//!
//! | Policy | Paper | Module |
//! |---|---|---|
//! | Best-Response (exact) | §2.1 Def. 1 | [`best_response`] |
//! | Best-Response (local search) | §3.2, §5 | [`best_response`] |
//! | BR(ε) threshold re-wiring | §4.3 | [`epsilon`] |
//! | k-Random | §3.2 | [`random`] |
//! | k-Closest | §3.2 | [`closest`] |
//! | k-Regular | §3.2 | [`regular`] |
//! | HybridBR (donated links) | §3.3 | [`hybrid`] |
//! | Bandwidth BR (max bottleneck sum) | §4.1, App. A | [`bandwidth`] |
//! | Traffic-aware BR (demand-blended prefs) | §5 (traffic) | [`traffic_aware`] |

pub mod bandwidth;
pub mod best_response;
pub mod closest;
pub mod epsilon;
pub mod hybrid;
pub mod random;
pub mod regular;
pub mod traffic_aware;

use crate::cost::Preferences;
use crate::residual::ResidualView;
use egoist_graph::NodeId;
use rand::rngs::StdRng;

/// Everything a policy may consult when choosing neighbors for one node.
///
/// All cost information is *announced* information: what the link-state
/// protocol disseminated plus the node's own direct measurements — a
/// free rider's lies are already baked in by the caller.
pub struct WiringContext<'a> {
    /// The node being (re-)wired.
    pub node: NodeId,
    /// Number of links it may establish.
    pub k: usize,
    /// Alive candidate neighbors (never contains `node`).
    pub candidates: &'a [NodeId],
    /// Direct link cost `d_ij` from `node` to every `j` (dense, length n);
    /// entries for dead nodes are ignored.
    pub direct: &'a [f64],
    /// Pairwise distances over the residual graph `G_{−i}` (announced
    /// costs) — a zero-copy [`ResidualView`], dense or copy-on-write.
    pub residual: ResidualView<'a>,
    /// Preference weights.
    pub prefs: &'a Preferences,
    /// Aliveness per node.
    pub alive: &'a [bool],
    /// Disconnection penalty `M`.
    pub penalty: f64,
    /// The node's current wiring (empty on first join).
    pub current: &'a [NodeId],
}

impl<'a> WiringContext<'a> {
    /// Effective number of links: can't exceed the candidate pool.
    pub fn effective_k(&self) -> usize {
        self.k.min(self.candidates.len())
    }
}

/// A neighbor-selection policy.
pub trait Policy {
    /// Choose up to `ctx.k` neighbors. Implementations must return
    /// distinct, alive candidates and never `ctx.node` itself.
    ///
    /// `&mut self`: solver policies keep reusable scratch arenas (the
    /// BR assignment matrix) across turns so the hot path allocates
    /// nothing per re-wiring. Implementations must stay deterministic —
    /// scratch reuse may never change a decision.
    fn wire(&mut self, ctx: &WiringContext<'_>, rng: &mut StdRng) -> Vec<NodeId>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Enumeration of the built-in policies, for configuration and dispatch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyKind {
    /// k-Random (§3.2).
    Random,
    /// k-Closest (§3.2).
    Closest,
    /// k-Regular with the paper's offset vector (§3.2).
    Regular,
    /// Best response by local search (the deployed EGOIST default, §3.2).
    BestResponse,
    /// Exact best response by exhaustive search (small instances only).
    ExactBestResponse,
    /// BR(ε): re-wire only for relative improvement beyond ε (§4.3).
    EpsilonBestResponse { epsilon: f64 },
    /// HybridBR: donate `k2` links to the connectivity backbone (§3.3).
    HybridBestResponse { k2: usize },
    /// Best response over demand-blended preferences: candidates are
    /// weighted by the observed traffic matrix (mixed into the base
    /// preferences with weight `bias`), so heavy destinations pull
    /// direct links toward themselves. The wiring solver itself is the
    /// ordinary local-search BR — only the preference rows differ, and
    /// the simulator supplies those via
    /// [`traffic_aware::demand_weighted_prefs`].
    TrafficAware { bias: f64 },
}

impl PolicyKind {
    /// Instantiate the policy object.
    pub fn instantiate(self) -> Box<dyn Policy + Send + Sync> {
        match self {
            PolicyKind::Random => Box::new(random::KRandom),
            PolicyKind::Closest => Box::new(closest::KClosest),
            PolicyKind::Regular => Box::new(regular::KRegular),
            PolicyKind::BestResponse => Box::new(best_response::BestResponse::local_search()),
            PolicyKind::ExactBestResponse => Box::new(best_response::BestResponse::exact()),
            PolicyKind::EpsilonBestResponse { epsilon } => {
                Box::new(epsilon::EpsilonBr::new(epsilon))
            }
            PolicyKind::HybridBestResponse { k2 } => Box::new(hybrid::HybridBr::new(k2)),
            PolicyKind::TrafficAware { .. } => {
                Box::new(best_response::BestResponse::local_search())
            }
        }
    }

    /// Instantiate with the pre-optimization reference solvers where
    /// they exist (the BR family's original greedy / local-search
    /// loops). Used by the `Recompute` oracle so `perf_baseline`'s
    /// `baseline_wall_ms` measures what the repo shipped before the
    /// epoch route-state engine; results are bit-identical either way.
    pub fn instantiate_reference(self) -> Box<dyn Policy + Send + Sync> {
        match self {
            PolicyKind::BestResponse => {
                Box::new(best_response::BestResponse::local_search().with_reference(true))
            }
            PolicyKind::ExactBestResponse => {
                Box::new(best_response::BestResponse::exact().with_reference(true))
            }
            PolicyKind::EpsilonBestResponse { epsilon } => {
                Box::new(epsilon::EpsilonBr::reference(epsilon))
            }
            PolicyKind::TrafficAware { .. } => {
                Box::new(best_response::BestResponse::local_search().with_reference(true))
            }
            other => other.instantiate(),
        }
    }

    /// Whether the policy's `wire()` ever reads `ctx.residual`. The
    /// oblivious wirings (§3.2's k-Random / k-Closest / k-Regular) rank
    /// candidates by direct cost or id alone, so callers can hand them a
    /// `ResidualView::broadcast` placeholder and skip the APSP — the
    /// difference between O(k·n) and O(n²·log n) per re-wire at fleet
    /// scale.
    pub fn needs_residual(self) -> bool {
        !matches!(
            self,
            PolicyKind::Random | PolicyKind::Closest | PolicyKind::Regular
        )
    }

    /// Short label used in figure output.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Random => "k-Random".into(),
            PolicyKind::Closest => "k-Closest".into(),
            PolicyKind::Regular => "k-Regular".into(),
            PolicyKind::BestResponse => "BR".into(),
            PolicyKind::ExactBestResponse => "BR-exact".into(),
            PolicyKind::EpsilonBestResponse { epsilon } => format!("BR({epsilon})"),
            PolicyKind::HybridBestResponse { k2 } => format!("HybridBR(k2={k2})"),
            PolicyKind::TrafficAware { bias } => format!("BR-demand({bias})"),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::wiring::Wiring;
    use egoist_graph::apsp::apsp;
    use egoist_graph::DistanceMatrix;

    /// Build a context over a concrete wiring for tests. Returns owned
    /// parts; bind them and then borrow into a `WiringContext`.
    pub struct CtxParts {
        pub node: NodeId,
        pub k: usize,
        pub candidates: Vec<NodeId>,
        pub direct: Vec<f64>,
        pub residual: DistanceMatrix,
        pub prefs: Preferences,
        pub alive: Vec<bool>,
        pub penalty: f64,
        pub current: Vec<NodeId>,
    }

    impl CtxParts {
        pub fn build(d: &DistanceMatrix, wiring: &Wiring, node: NodeId, k: usize) -> CtxParts {
            let n = d.len();
            let alive = vec![true; n];
            let residual = apsp(&wiring.residual_graph(node, d, &alive));
            let candidates: Vec<NodeId> = (0..n)
                .map(NodeId::from_index)
                .filter(|&j| j != node)
                .collect();
            CtxParts {
                node,
                k,
                candidates,
                direct: d.row(node.index()).to_vec(),
                residual,
                prefs: Preferences::uniform(n),
                alive,
                penalty: crate::cost::disconnection_penalty(d),
                current: wiring.of(node).to_vec(),
            }
        }

        pub fn ctx(&self) -> WiringContext<'_> {
            WiringContext {
                node: self.node,
                k: self.k,
                candidates: &self.candidates,
                direct: &self.direct,
                residual: ResidualView::dense(&self.residual),
                prefs: &self.prefs,
                alive: &self.alive,
                penalty: self.penalty,
                current: &self.current,
            }
        }
    }
}
