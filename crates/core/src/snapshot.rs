//! The epoch route-state engine: shared snapshots and incremental
//! residual repair.
//!
//! §3.1's newcomer procedure — "run an all-pairs shortest path algorithm
//! on `G−i`" — is what made best-response dynamics quadratic-in-`n` per
//! epoch: every staggered turn rebuilt the announced cost matrix and ran
//! a from-scratch APSP over the residual overlay. But within one epoch
//! the underlay is sampled once, so the announced matrix is constant, and
//! consecutive turns differ only by single-node wiring deltas. This
//! module exploits both facts:
//!
//! * [`EpochSnapshot`] — announced matrix, disconnection penalty, alive
//!   set, the full-wiring CSR graph and its all-pairs result (with
//!   shortest-path-tree parents), built once and invalidated only when
//!   the underlay advances, membership churns, or an external actor
//!   (traffic feedback) mutates the underlay models.
//! * **Residual views, not residual matrices** — the turn node `i`'s
//!   `G−i` distances are served through a zero-copy
//!   [`crate::residual::ResidualView`]: a source `s` is repaired into a
//!   small side pool only when its shortest-path tree actually routes
//!   through one of `i`'s out-edges; every other row is *borrowed* from
//!   the snapshot in place. Borrowing is exact: a tree that avoids `i`'s
//!   out-links survives their removal, and removal can only lengthen
//!   paths, so the minimum is unchanged — bit-for-bit, since equal path
//!   minima are equal `f64`s. Per-turn cost is `O(affected · sweep)`
//!   instead of the former dense `O(n²)` materialization.
//! * **Rewiring repair** — when node `i` commits a new wiring, the
//!   snapshot absorbs it *in place*: the pool rows this very turn
//!   repaired (the post-removal state of every affected source) are
//!   written back over their snapshot rows, unaffected rows already
//!   *are* post-removal (that is the borrow argument above), and then
//!   the *added* edges propagate through a decrease-only (additive) or
//!   increase-only (widest) repair seeded at the new edge heads.
//!   `d(s, i)` itself never changes across `i`'s re-wiring (a simple
//!   path to `i` uses none of `i`'s out-edges), which is what makes the
//!   seeds valid. The snapshot's CSR is patched on node `i`'s out-edge
//!   slice only ([`CsrGraph::rewrite_out_edges`]).
//!
//! The all-pairs rebuild fans sources out over `std::thread::scope`
//! threads in `egoist_graph::csr`, each writing disjoint row slices, so
//! results are byte-deterministic under any scheduling (and run inline
//! when one core is all there is).

use crate::residual::{CowResidual, ResidualView, NO_SLOT};
use crate::wiring::Wiring;
use egoist_graph::csr::{tree_descendants, NO_PARENT};
use egoist_graph::{CsrApsp, CsrGraph, DiGraph, DijkstraWorkspace, DistanceMatrix, NodeId};

/// Which path semiring the snapshot's all-pairs state uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Min-plus shortest paths (delay / load metrics).
    Additive,
    /// Max-min widest paths (the bandwidth metric).
    Widest,
}

/// Everything a wiring turn reads, computed once per epoch state.
pub struct EpochSnapshot {
    pub kind: SnapshotKind,
    /// Announced edge-cost matrix (constant between underlay advances).
    pub announced: DistanceMatrix,
    /// Disconnection penalty `M` derived from `announced`.
    pub penalty: f64,
    /// Membership at snapshot time.
    pub alive: Vec<bool>,
    /// Full-wiring overlay in CSR form (alive edges, announced costs).
    pub csr: CsrGraph,
    /// `csr` reversed — in-edge access for the removal repairs.
    pub rev: CsrGraph,
    /// All-pairs distances/widths and shortest-path-tree parents over
    /// `csr`, kept exact across incremental re-wiring repairs.
    pub apsp: CsrApsp,
}

/// Work counters — how much of the engine's traffic the incremental
/// paths absorbed (asserted by tests, reported by the perf bench).
#[derive(Clone, Copy, Debug, Default)]
pub struct RouteStats {
    /// Full snapshot rebuilds (underlay advances, churn, feedback).
    pub rebuilds: usize,
    /// Residual rows repaired into the pool because the source routed
    /// through the turn node.
    pub residual_swept: usize,
    /// Residual rows borrowed zero-copy from the snapshot.
    pub residual_borrowed: usize,
    /// Post-rewiring rows re-swept in full (a tree edge was removed).
    pub rewire_swept: usize,
    /// Post-rewiring rows absorbed by decrease/increase repair.
    pub rewire_repaired: usize,
}

/// Obs handles for the engine, resolved once per [`RouteState`].
/// Wall time goes to the `core.epoch.turn.{residual,absorb}` spans;
/// the work counters mirror [`RouteStats`] into the global registry
/// (batched — one atomic add per `residual`/`note_rewire` call).
struct RouteObs {
    residual: egoist_obs::Timer,
    absorb: egoist_obs::Timer,
    rebuilds: egoist_obs::Counter,
    residual_borrowed: egoist_obs::Counter,
    residual_swept: egoist_obs::Counter,
    rewire_swept: egoist_obs::Counter,
    rewire_repaired: egoist_obs::Counter,
}

impl RouteObs {
    fn resolve() -> Self {
        let r = egoist_obs::registry();
        RouteObs {
            residual: r.timer("core.epoch.turn.residual"),
            absorb: r.timer("core.epoch.turn.absorb"),
            rebuilds: r.counter("core.route.rebuilds"),
            residual_borrowed: r.counter("core.route.residual_borrowed"),
            residual_swept: r.counter("core.route.residual_swept"),
            rewire_swept: r.counter("core.route.rewire_swept"),
            rewire_repaired: r.counter("core.route.rewire_repaired"),
        }
    }
}

/// The engine: an optional live snapshot plus reusable scratch arenas.
pub struct RouteState {
    snap: Option<EpochSnapshot>,
    ws: DijkstraWorkspace,
    /// Copy-on-write side pool: per-source dispatch table (`NO_SLOT` =
    /// borrow the snapshot row) plus packed repaired rows. Retained
    /// between [`Self::residual`] and [`Self::note_rewire`] so a
    /// committed re-wiring can write the post-removal rows back instead
    /// of re-sweeping them.
    row_slot: Vec<u32>,
    pool_dist: Vec<f64>,
    pool_parent: Vec<u32>,
    /// Source of each pool slot, in slot order.
    pool_rows: Vec<u32>,
    /// The turn node's own residual row (no out-links survive `G−i`).
    self_row: Vec<f64>,
    /// Which node the retained pool was computed for.
    residual_for: Option<usize>,
    /// Child-bucket scratch for subtree collection.
    child_head: Vec<u32>,
    child_next: Vec<u32>,
    affected: Vec<u32>,
    pub stats: RouteStats,
    obs: RouteObs,
}

impl RouteState {
    /// An empty engine (no snapshot yet).
    pub fn new() -> Self {
        RouteState {
            snap: None,
            ws: DijkstraWorkspace::new(0),
            row_slot: Vec::new(),
            pool_dist: Vec::new(),
            pool_parent: Vec::new(),
            pool_rows: Vec::new(),
            self_row: Vec::new(),
            residual_for: None,
            child_head: Vec::new(),
            child_next: Vec::new(),
            affected: Vec::new(),
            stats: RouteStats::default(),
            obs: RouteObs::resolve(),
        }
    }

    /// Drop the snapshot; the next turn rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.snap = None;
        self.residual_for = None;
    }

    /// Is a snapshot of this kind live?
    pub fn valid(&self, kind: SnapshotKind) -> bool {
        self.snap.as_ref().is_some_and(|s| s.kind == kind)
    }

    /// The live snapshot, if any.
    pub fn snapshot(&self) -> Option<&EpochSnapshot> {
        self.snap.as_ref()
    }

    /// Install a fresh snapshot for `overlay` (the full current wiring
    /// on announced costs).
    pub fn rebuild(
        &mut self,
        kind: SnapshotKind,
        announced: DistanceMatrix,
        penalty: f64,
        alive: Vec<bool>,
        overlay: &DiGraph,
    ) {
        let csr = CsrGraph::from_digraph(overlay);
        let rev = csr.reversed();
        let apsp = match kind {
            SnapshotKind::Additive => egoist_graph::csr::apsp_csr(&csr),
            SnapshotKind::Widest => egoist_graph::csr::widest_csr(&csr),
        };
        self.stats.rebuilds += 1;
        self.obs.rebuilds.inc();
        self.residual_for = None;
        self.snap = Some(EpochSnapshot {
            kind,
            announced,
            penalty,
            alive,
            csr,
            rev,
            apsp,
        });
    }

    /// The residual view for the turn node `i` — pairwise distances (or
    /// widths) over `G−i`, bit-identical to a from-scratch all-pairs run
    /// on the residual graph, without materializing it.
    ///
    /// Affected rows (sources whose shortest-path tree routes through
    /// `i`) are copied into the side pool and repaired on `i`'s tree
    /// descendants only; every other row is borrowed from the snapshot
    /// zero-copy. The pool is retained together with its parents so
    /// [`Self::note_rewire`] can write the post-removal rows back in
    /// place on a commit.
    ///
    /// # Panics
    /// Panics when no snapshot is live; callers must `rebuild` first.
    pub fn residual(&mut self, i: usize) -> ResidualView<'_> {
        let span = self.obs.residual.start();
        let (borrowed0, swept0) = (self.stats.residual_borrowed, self.stats.residual_swept);
        let snap = self.snap.as_ref().expect("route snapshot must be live");
        let n = snap.apsp.n;
        self.row_slot.clear();
        self.row_slot.resize(n, NO_SLOT);
        self.pool_rows.clear();
        // Source `i` keeps no out-links in `G−i`.
        self.self_row.clear();
        match snap.kind {
            SnapshotKind::Additive => {
                self.self_row.resize(n, f64::INFINITY);
                self.self_row[i] = 0.0;
            }
            SnapshotKind::Widest => {
                self.self_row.resize(n, 0.0);
                self.self_row[i] = f64::INFINITY;
            }
        }
        let iu = i as u32;
        for s in 0..n {
            if s == i {
                continue;
            }
            if !snap.apsp.routes_through(s, iu) {
                self.stats.residual_borrowed += 1;
                continue;
            }
            let slot = self.pool_rows.len();
            let lo = slot * n;
            if self.pool_dist.len() < lo + n {
                self.pool_dist.resize(lo + n, f64::INFINITY);
                self.pool_parent.resize(lo + n, NO_PARENT);
            }
            let row = &mut self.pool_dist[lo..lo + n];
            let prow = &mut self.pool_parent[lo..lo + n];
            row.copy_from_slice(snap.apsp.dist_row(s));
            prow.copy_from_slice(snap.apsp.parent_row(s));
            tree_descendants(
                prow,
                iu,
                &mut self.child_head,
                &mut self.child_next,
                &mut self.affected,
            );
            match snap.kind {
                SnapshotKind::Additive => {
                    self.ws
                        .repair_removal(&snap.csr, &snap.rev, iu, &self.affected, row, prow)
                }
                SnapshotKind::Widest => self.ws.repair_removal_widest(
                    &snap.csr,
                    &snap.rev,
                    iu,
                    &self.affected,
                    row,
                    prow,
                ),
            }
            self.row_slot[s] = slot as u32;
            self.pool_rows.push(s as u32);
            self.stats.residual_swept += 1;
        }
        self.residual_for = Some(i);
        self.obs
            .residual_borrowed
            .add((self.stats.residual_borrowed - borrowed0) as u64);
        self.obs
            .residual_swept
            .add((self.stats.residual_swept - swept0) as u64);
        drop(span);
        ResidualView::cow(CowResidual {
            n,
            node: i,
            snap: &self.snap.as_ref().expect("still live").apsp.dist,
            slot: &self.row_slot,
            pool: &self.pool_dist,
            self_row: &self.self_row,
        })
    }

    /// Absorb node `i`'s committed re-wiring into the live snapshot, if
    /// any.
    ///
    /// The fast path reuses the residual pool [`Self::residual`] just
    /// computed for this very turn: the repaired pool rows *are* the
    /// post-removal distances of every affected source, and every
    /// unaffected row already equals its post-removal state (its tree
    /// avoids `i`'s out-links), so the absorb writes the pool rows back
    /// over their snapshot rows in place and then propagates only the
    /// inserted out-links of `i` (decrease-only / increase-only repair
    /// per source). The snapshot CSR is patched on `i`'s out-edge slice
    /// only; no buffer is reallocated or swapped.
    pub fn note_rewire(&mut self, i: NodeId, old: &[NodeId], wiring: &Wiring, alive: &[bool]) {
        let Some(snap) = self.snap.as_mut() else {
            return;
        };
        let new = wiring.of(i);
        let changed = {
            let mut o: Vec<NodeId> = old.iter().copied().filter(|w| alive[w.index()]).collect();
            o.sort_unstable();
            let mut m: Vec<NodeId> = new.iter().copied().filter(|w| alive[w.index()]).collect();
            m.sort_unstable();
            o != m
        };
        if !changed {
            return;
        }
        let span = self.obs.absorb.start();
        let (swept0, repaired0) = (self.stats.rewire_swept, self.stats.rewire_repaired);
        // Patch the CSR topology on node `i`'s slice only — every other
        // node's adjacency is unchanged since the snapshot was built (or
        // last patched); churn and external mutation invalidate instead.
        let new_edges: Vec<(u32, f64)> = if alive[i.index()] {
            new.iter()
                .filter(|w| alive[w.index()])
                .map(|w| (w.0, snap.announced.get(i, *w)))
                .collect()
        } else {
            Vec::new()
        };
        snap.csr.rewrite_out_edges(i.index(), &new_edges);
        snap.csr.reverse_into(&mut snap.rev);
        let n = snap.apsp.n;
        let iu = i.0;

        if self.residual_for == Some(i.index()) {
            // Adopt the retained `G−i` pool: write the post-removal rows
            // back in place, then insert `i`'s new out-links everywhere.
            for (slot, &s) in self.pool_rows.iter().enumerate() {
                let src = slot * n;
                let dst = s as usize * n;
                snap.apsp.dist[dst..dst + n].copy_from_slice(&self.pool_dist[src..src + n]);
                snap.apsp.parent[dst..dst + n].copy_from_slice(&self.pool_parent[src..src + n]);
            }
            // Row `i` post-removal: nothing but itself is reachable.
            let lo = i.index() * n;
            match snap.kind {
                SnapshotKind::Additive => {
                    snap.apsp.dist[lo..lo + n].fill(f64::INFINITY);
                    snap.apsp.dist[lo + i.index()] = 0.0;
                }
                SnapshotKind::Widest => {
                    snap.apsp.dist[lo..lo + n].fill(0.0);
                    snap.apsp.dist[lo + i.index()] = f64::INFINITY;
                }
            }
            snap.apsp.parent[lo..lo + n].fill(NO_PARENT);
            self.residual_for = None;
            for s in 0..n {
                let lo = s * n;
                let dist = &mut snap.apsp.dist[lo..lo + n];
                let parent = &mut snap.apsp.parent[lo..lo + n];
                insert_edges(
                    &mut self.ws,
                    snap.kind,
                    &snap.csr,
                    &new_edges,
                    i.index(),
                    dist,
                    parent,
                );
                self.stats.rewire_repaired += 1;
            }
            self.flush_rewire_obs(swept0, repaired0);
            drop(span);
            return;
        }

        // Fallback (no retained residual for `i`): re-sweep sources that
        // routed through `i`, insert the new links everywhere else.
        let old_alive: Vec<NodeId> = old.iter().copied().filter(|w| alive[w.index()]).collect();
        for s in 0..n {
            let lo = s * n;
            let dist = &mut snap.apsp.dist[lo..lo + n];
            let parent = &mut snap.apsp.parent[lo..lo + n];
            let tree_lost = old_alive.iter().any(|w| parent[w.index()] == iu);
            if tree_lost || s == i.index() {
                match snap.kind {
                    SnapshotKind::Additive => {
                        self.ws.sssp_into(&snap.csr, s as u32, None, dist, parent)
                    }
                    SnapshotKind::Widest => {
                        self.ws.widest_into(&snap.csr, s as u32, None, dist, parent)
                    }
                }
                self.stats.rewire_swept += 1;
                continue;
            }
            insert_edges(
                &mut self.ws,
                snap.kind,
                &snap.csr,
                &new_edges,
                i.index(),
                dist,
                parent,
            );
            self.stats.rewire_repaired += 1;
        }
        self.flush_rewire_obs(swept0, repaired0);
        drop(span);
    }

    fn flush_rewire_obs(&self, swept0: usize, repaired0: usize) {
        self.obs
            .rewire_swept
            .add((self.stats.rewire_swept - swept0) as u64);
        self.obs
            .rewire_repaired
            .add((self.stats.rewire_repaired - repaired0) as u64);
    }
}

/// Propagate node `i`'s inserted out-edges into one source row by
/// decrease-only (additive) / increase-only (widest) repair.
///
/// `d(s, i)` is invariant under changes to `i`'s out-links (a simple
/// path to `i` uses none of them), so the row's current value seeds the
/// insertion exactly; `d(i, i)` is 0 / ∞-width for `i` itself.
fn insert_edges(
    ws: &mut DijkstraWorkspace,
    kind: SnapshotKind,
    csr: &CsrGraph,
    new_edges: &[(u32, f64)],
    i: usize,
    dist: &mut [f64],
    parent: &mut [u32],
) {
    let iu = i as u32;
    let via = dist[i];
    match kind {
        SnapshotKind::Additive => {
            if via.is_finite() {
                let seeds: Vec<(u32, f64, u32)> =
                    new_edges.iter().map(|&(w, c)| (w, via + c, iu)).collect();
                ws.repair_decrease(csr, &seeds, dist, parent);
            }
        }
        SnapshotKind::Widest => {
            if via > 0.0 {
                let seeds: Vec<(u32, f64, u32)> = new_edges
                    .iter()
                    .map(|&(w, c)| (w, via.min(c), iu))
                    .collect();
                ws.repair_increase_widest(csr, &seeds, dist, parent);
            }
        }
    }
}

impl Default for RouteState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::disconnection_penalty;
    use egoist_graph::apsp::apsp;
    use egoist_graph::csr::apsp_csr;
    use egoist_netsim::delay::{DelayConfig, DelayModel};
    use egoist_netsim::{PlanetLabSpec, Region};

    fn setup(n: usize, k: usize, seed: u64) -> (DistanceMatrix, Wiring, Vec<bool>) {
        let d = DelayModel::from_spec(
            &PlanetLabSpec::uniform(Region::NorthAmerica, n),
            &DelayConfig::default(),
            seed,
        )
        .base()
        .clone();
        let mut w = Wiring::empty(n);
        for i in 0..n {
            let mut neigh = Vec::new();
            for o in 1..=k {
                neigh.push(NodeId::from_index((i + o * 3 + seed as usize) % n));
            }
            neigh.retain(|x| x.index() != i);
            w.rewire(NodeId::from_index(i), neigh);
        }
        (d, w, vec![true; n])
    }

    fn fresh_state(
        kind: SnapshotKind,
        d: &DistanceMatrix,
        w: &Wiring,
        alive: &[bool],
    ) -> RouteState {
        let mut rs = RouteState::new();
        rs.rebuild(
            kind,
            d.clone(),
            disconnection_penalty(d),
            alive.to_vec(),
            &w.to_graph(d, alive),
        );
        rs
    }

    #[test]
    fn residual_matches_from_scratch_apsp() {
        let (d, w, alive) = setup(24, 3, 1);
        let mut rs = fresh_state(SnapshotKind::Additive, &d, &w, &alive);
        for i in [0usize, 7, 23] {
            let oracle = apsp(&w.residual_graph(NodeId::from_index(i), &d, &alive));
            let got = rs.residual(i);
            for s in 0..24 {
                for t in 0..24 {
                    assert_eq!(
                        oracle.at(s, t).to_bits(),
                        got.at(s, t).to_bits(),
                        "residual({i}) mismatch at ({s},{t})"
                    );
                }
            }
        }
        assert!(rs.stats.residual_borrowed > 0, "some rows must be borrowed");
    }

    #[test]
    fn residual_widest_matches_all_pairs_widest() {
        let (d, w, alive) = setup(20, 3, 2);
        let mut rs = fresh_state(SnapshotKind::Widest, &d, &w, &alive);
        for i in [0usize, 9, 19] {
            let oracle = crate::policies::bandwidth::all_pairs_widest(&w.residual_graph(
                NodeId::from_index(i),
                &d,
                &alive,
            ));
            let got = rs.residual(i);
            for s in 0..20 {
                for t in 0..20 {
                    assert_eq!(
                        oracle.at(s, t).to_bits(),
                        got.at(s, t).to_bits(),
                        "widest residual({i}) mismatch at ({s},{t})"
                    );
                }
            }
        }
    }

    #[test]
    fn note_rewire_keeps_apsp_exact() {
        let (d, mut w, alive) = setup(26, 3, 3);
        let mut rs = fresh_state(SnapshotKind::Additive, &d, &w, &alive);
        // A chain of re-wirings: replace, shrink, grow.
        let moves: Vec<(usize, Vec<usize>)> = vec![
            (4, vec![1, 9, 17]),
            (4, vec![1]),
            (11, vec![4, 5, 6, 7]),
            (0, vec![25]),
        ];
        for (node, links) in moves {
            let i = NodeId::from_index(node);
            let old = w.of(i).to_vec();
            w.rewire(i, links.into_iter().map(NodeId::from_index).collect());
            rs.note_rewire(i, &old, &w, &alive);
            let truth = apsp_csr(&CsrGraph::from_digraph(&w.to_graph(&d, &alive)));
            let snap = rs.snapshot().unwrap();
            for p in 0..26 * 26 {
                assert_eq!(
                    truth.dist[p].to_bits(),
                    snap.apsp.dist[p].to_bits(),
                    "post-rewire dist drift at {p}"
                );
            }
        }
        assert!(rs.stats.rewire_repaired > 0);
    }

    #[test]
    fn note_rewire_keeps_widest_exact() {
        let (d, mut w, alive) = setup(22, 3, 4);
        let mut rs = fresh_state(SnapshotKind::Widest, &d, &w, &alive);
        for (node, links) in [(2usize, vec![8usize, 14]), (8, vec![2, 3, 4]), (2, vec![9])] {
            let i = NodeId::from_index(node);
            let old = w.of(i).to_vec();
            w.rewire(i, links.into_iter().map(NodeId::from_index).collect());
            rs.note_rewire(i, &old, &w, &alive);
            let truth =
                egoist_graph::csr::widest_csr(&CsrGraph::from_digraph(&w.to_graph(&d, &alive)));
            let snap = rs.snapshot().unwrap();
            for p in 0..22 * 22 {
                assert_eq!(
                    truth.dist[p].to_bits(),
                    snap.apsp.dist[p].to_bits(),
                    "post-rewire width drift at {p}"
                );
            }
        }
    }

    #[test]
    fn residual_after_rewire_still_matches_oracle() {
        let (d, mut w, alive) = setup(18, 3, 5);
        let mut rs = fresh_state(SnapshotKind::Additive, &d, &w, &alive);
        let i = NodeId(6);
        let old = w.of(i).to_vec();
        w.rewire(i, vec![NodeId(1), NodeId(2)]);
        rs.note_rewire(i, &old, &w, &alive);
        for probe in [0usize, 6, 17] {
            let oracle = apsp(&w.residual_graph(NodeId::from_index(probe), &d, &alive));
            let got = rs.residual(probe);
            for s in 0..18 {
                for t in 0..18 {
                    assert_eq!(oracle.at(s, t).to_bits(), got.at(s, t).to_bits());
                }
            }
        }
    }

    #[test]
    fn invalidate_drops_snapshot() {
        let (d, w, alive) = setup(10, 2, 6);
        let mut rs = fresh_state(SnapshotKind::Additive, &d, &w, &alive);
        assert!(rs.valid(SnapshotKind::Additive));
        assert!(!rs.valid(SnapshotKind::Widest));
        rs.invalidate();
        assert!(!rs.valid(SnapshotKind::Additive));
        assert!(rs.snapshot().is_none());
    }

    #[test]
    fn dead_targets_ignored_in_rewire_delta() {
        let (d, mut w, mut alive) = setup(12, 2, 7);
        alive[5] = false;
        // Rebuild over the reduced membership.
        let mut rs = fresh_state(SnapshotKind::Additive, &d, &w, &alive);
        let i = NodeId(3);
        let old = w.of(i).to_vec();
        // New wiring includes the dead node 5 — the alive filter must
        // keep it out of the delta and the graph alike.
        w.rewire(i, vec![NodeId(5), NodeId(7)]);
        rs.note_rewire(i, &old, &w, &alive);
        let truth = apsp_csr(&CsrGraph::from_digraph(&w.to_graph(&d, &alive)));
        let snap = rs.snapshot().unwrap();
        for p in 0..12 * 12 {
            assert_eq!(truth.dist[p].to_bits(), snap.apsp.dist[p].to_bits());
        }
    }
}
