//! Cross-module property tests for the SNS core.

use crate::cost::Preferences;
use crate::policies::best_response::{BestResponse, BrInstance};
use crate::policies::{PolicyKind, WiringContext};
use crate::wiring::Wiring;
use egoist_graph::apsp::apsp;
use egoist_graph::{DistanceMatrix, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random positive cost matrix of size n.
fn arb_matrix(max_n: usize) -> impl Strategy<Value = DistanceMatrix> {
    (4usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec(1u32..200u32, n * n)
            .prop_map(move |v| DistanceMatrix::from_fn(n, |i, j| v[i * n + j] as f64))
    })
}

/// A random wiring with degree ≤ 3 (from a hash of the matrix for
/// determinism inside the property).
fn ring_wiring(n: usize) -> Wiring {
    let mut w = Wiring::empty(n);
    for i in 0..n {
        w.rewire(NodeId::from_index(i), vec![NodeId::from_index((i + 1) % n)]);
    }
    w
}

struct Built {
    candidates: Vec<NodeId>,
    direct: Vec<f64>,
    residual: DistanceMatrix,
    prefs: Preferences,
    alive: Vec<bool>,
    penalty: f64,
    current: Vec<NodeId>,
}

fn build(d: &DistanceMatrix, w: &Wiring, node: NodeId) -> Built {
    let n = d.len();
    let alive = vec![true; n];
    let residual = apsp(&w.residual_graph(node, d, &alive));
    Built {
        candidates: (0..n)
            .map(NodeId::from_index)
            .filter(|&j| j != node)
            .collect(),
        direct: d.row(node.index()).to_vec(),
        residual,
        prefs: Preferences::uniform(n),
        alive,
        penalty: crate::cost::disconnection_penalty(d),
        current: w.of(node).to_vec(),
    }
}

fn ctx<'a>(b: &'a Built, node: NodeId, k: usize) -> WiringContext<'a> {
    WiringContext {
        node,
        k,
        candidates: &b.candidates,
        direct: &b.direct,
        residual: crate::residual::ResidualView::dense(&b.residual),
        prefs: &b.prefs,
        alive: &b.alive,
        penalty: b.penalty,
        current: &b.current,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Local-search BR is within 5% of the exhaustive optimum (the §4.1
    /// quality claim) on small random instances.
    #[test]
    fn local_search_within_five_percent(d in arb_matrix(9), k in 1usize..4) {
        let w = ring_wiring(d.len());
        let b = build(&d, &w, NodeId(0));
        let c = ctx(&b, NodeId(0), k);
        let inst = BrInstance::build(&c);
        let kk = k.min(c.candidates.len());
        let (_, c_exact) = inst.exhaustive(kk, &[], 1_000_000).expect("budget");
        let (_, c_ls) = BestResponse::local_search().solve(&c);
        prop_assert!(c_ls <= c_exact * 1.05 + 1e-9,
            "local search {c_ls} vs optimal {c_exact}");
    }

    /// Every policy returns ≤ k distinct alive non-self neighbors.
    #[test]
    fn policies_return_wellformed_wirings(d in arb_matrix(10), k in 1usize..5) {
        let w = ring_wiring(d.len());
        let b = build(&d, &w, NodeId(1));
        let c = ctx(&b, NodeId(1), k);
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            PolicyKind::Random,
            PolicyKind::Closest,
            PolicyKind::Regular,
            PolicyKind::BestResponse,
            PolicyKind::EpsilonBestResponse { epsilon: 0.1 },
            PolicyKind::HybridBestResponse { k2: 2 },
        ] {
            let mut policy = kind.instantiate();
            let out = policy.wire(&c, &mut rng);
            prop_assert!(out.len() <= k.max(2), "{} overshot k", policy.name());
            let mut s = out.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), out.len(), "duplicates from {}", policy.name());
            prop_assert!(!out.contains(&NodeId(1)), "self link from {}", policy.name());
        }
    }

    /// BR cost is monotone non-increasing in k (more links never hurt).
    #[test]
    fn br_cost_monotone_in_k(d in arb_matrix(9)) {
        let w = ring_wiring(d.len());
        let b = build(&d, &w, NodeId(0));
        let mut prev = f64::INFINITY;
        for k in 1..5.min(d.len() - 1) {
            let c = ctx(&b, NodeId(0), k);
            let (_, cost) = BestResponse::local_search().solve(&c);
            prop_assert!(cost <= prev + 1e-9);
            prev = cost;
        }
    }

    /// The BR instance evaluation is monotone: supersets never cost more.
    #[test]
    fn br_eval_superset_monotone(d in arb_matrix(9)) {
        let w = ring_wiring(d.len());
        let b = build(&d, &w, NodeId(0));
        let c = ctx(&b, NodeId(0), 3);
        let inst = BrInstance::build(&c);
        let m = inst.cand.len();
        let small: Vec<usize> = vec![0, 1.min(m - 1)];
        let big: Vec<usize> = (0..m.min(5)).collect();
        prop_assert!(inst.eval(&big) <= inst.eval(&small) + 1e-9);
    }

    /// Social cost of a converged BR game never exceeds the all-random
    /// baseline, and the game engine's rewire turns keep the wiring
    /// well-formed.
    #[test]
    fn game_invariants(seed in 0u64..30) {
        let d = DistanceMatrix::from_fn(12, |i, j| {
            (((i * 31 + j * 17 + seed as usize * 7) % 97) + 1) as f64
        });
        let mut game = crate::game::Game::new(d.clone(), 3, PolicyKind::BestResponse, seed);
        game.run_to_convergence(30);
        for i in 0..12 {
            let s = game.wiring.of(NodeId::from_index(i));
            prop_assert!(s.len() <= 3);
            prop_assert!(!s.contains(&NodeId::from_index(i)));
        }
        let mut rnd = crate::game::Game::new(d, 3, PolicyKind::Random, seed);
        rnd.sweep();
        prop_assert!(game.social_cost() <= rnd.social_cost() + 1e-9);
    }

    /// The copy-on-write [`crate::residual::ResidualView`] is
    /// bit-identical to a from-scratch all-pairs run on the residual
    /// graph — random point probes, full candidate-row reads, and reads
    /// after a committed re-wiring, for both snapshot kinds.
    #[test]
    fn residual_view_matches_from_scratch_oracle(
        d in arb_matrix(14),
        probes in proptest::collection::vec((0usize..64, 0usize..64), 8),
        turn in 0usize..64,
        twist in 0u64..1000,
    ) {
        use crate::cost::disconnection_penalty;
        use crate::policies::bandwidth::all_pairs_widest;
        use crate::snapshot::{RouteState, SnapshotKind};

        let n = d.len();
        // Ring plus one extra chord per node: trees with real subtrees.
        let mut w = ring_wiring(n);
        for i in 0..n {
            let mut links = w.of(NodeId::from_index(i)).to_vec();
            links.push(NodeId::from_index((i + 2 + (twist as usize % 3)) % n));
            links.retain(|x| x.index() != i);
            links.sort_unstable();
            links.dedup();
            w.rewire(NodeId::from_index(i), links);
        }
        let alive = vec![true; n];
        for kind in [SnapshotKind::Additive, SnapshotKind::Widest] {
            let oracle = |node: NodeId, wiring: &Wiring| -> DistanceMatrix {
                let g = wiring.residual_graph(node, &d, &alive);
                match kind {
                    SnapshotKind::Additive => apsp(&g),
                    SnapshotKind::Widest => all_pairs_widest(&g),
                }
            };
            let mut rs = RouteState::new();
            rs.rebuild(
                kind,
                d.clone(),
                disconnection_penalty(&d),
                alive.clone(),
                &w.to_graph(&d, &alive),
            );

            let i = turn % n;
            let truth = oracle(NodeId::from_index(i), &w);
            {
                let view = rs.residual(i);
                // Full candidate-row reads (every row, every entry).
                for s in 0..n {
                    let row = view.row(s);
                    for (t, x) in row.iter().enumerate() {
                        prop_assert_eq!(
                            x.to_bits(),
                            truth.at(s, t).to_bits(),
                            "{kind:?} row read ({s},{t}) for turn {i}"
                        );
                    }
                }
                // Random point probes.
                for &(ps, pt) in &probes {
                    let (s, t) = (ps % n, pt % n);
                    prop_assert_eq!(
                        view.at(s, t).to_bits(),
                        truth.at(s, t).to_bits(),
                        "{kind:?} probe ({s},{t}) for turn {i}"
                    );
                }
            }

            // Commit a re-wiring of the turn node and read again through
            // a fresh view for a different node.
            let node = NodeId::from_index(i);
            let old = w.of(node).to_vec();
            let mut links: Vec<NodeId> = (1..=2)
                .map(|o| NodeId::from_index((i + o + twist as usize) % n))
                .filter(|x| x.index() != i)
                .collect();
            links.sort_unstable();
            links.dedup();
            w.rewire(node, links);
            rs.note_rewire(node, &old, &w, &alive);

            let j = (i + 1 + twist as usize) % n;
            let truth2 = oracle(NodeId::from_index(j), &w);
            let view2 = rs.residual(j);
            for s in 0..n {
                let row = view2.row(s);
                for (t, x) in row.iter().enumerate() {
                    prop_assert_eq!(
                        x.to_bits(),
                        truth2.at(s, t).to_bits(),
                        "{kind:?} post-rewire read ({s},{t}) for turn {j}"
                    );
                }
            }
        }
    }
}
