//! Free riders and audits (§3.4, §4.5).
//!
//! A free rider "announces false information via the link-state protocol
//! to discourage others from picking it as an upstream neighbor", e.g. by
//! inflating the delays of its outgoing links. The lie affects (a) other
//! nodes' wiring decisions and (b) overlay routing — but not the liar's
//! own direct measurements, and not the *true* delay its forwarded traffic
//! experiences.
//!
//! The audit countermeasure compares announced link costs against
//! independently obtained estimates (virtual-coordinate queries or active
//! probes) and flags nodes whose announcements deviate beyond a tolerance.

use egoist_graph::{DistanceMatrix, NodeId};

/// Configuration of the cheating population.
#[derive(Clone, Debug, Default)]
pub struct CheatConfig {
    /// Nodes that misreport their outgoing link costs.
    pub free_riders: Vec<NodeId>,
    /// Multiplier applied to the liar's announced out-link costs
    /// (2.0 in Fig. 4; values below 1.0 model *deflation*, which footnote
    /// 10 reports behaves similarly).
    pub inflation: f64,
}

impl CheatConfig {
    /// No cheating.
    pub fn honest() -> Self {
        CheatConfig {
            free_riders: Vec::new(),
            inflation: 1.0,
        }
    }

    /// One free rider with the paper's ×2 inflation.
    pub fn single(node: NodeId) -> Self {
        CheatConfig {
            free_riders: vec![node],
            inflation: 2.0,
        }
    }

    /// The first `count` nodes cheat with ×2 inflation (Fig. 4 right
    /// sweeps 0..16 free riders).
    pub fn first_n(count: usize, inflation: f64) -> Self {
        CheatConfig {
            free_riders: (0..count as u32).map(NodeId).collect(),
            inflation,
        }
    }

    /// Is `i` a free rider?
    pub fn is_free_rider(&self, i: NodeId) -> bool {
        self.free_riders.contains(&i)
    }

    /// The announced cost matrix: true costs with the free riders' *rows*
    /// (their outgoing links) scaled by `inflation`.
    pub fn announced_matrix(&self, truth: &DistanceMatrix) -> DistanceMatrix {
        let n = truth.len();
        DistanceMatrix::from_fn(n, |i, j| {
            let c = truth.at(i, j);
            if self.is_free_rider(NodeId::from_index(i)) {
                c * self.inflation
            } else {
                c
            }
        })
    }
}

/// Result of auditing one node.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditFinding {
    pub node: NodeId,
    /// Maximum relative deviation |announced − estimated| / estimated over
    /// the audited links.
    pub max_deviation: f64,
    pub flagged: bool,
}

/// Audit announced link costs against independent estimates.
///
/// `announced` is the link-state view; `estimate(u, v)` returns an
/// independent estimate of the true cost (e.g. a pyxida query, §3.4).
/// A node is flagged when any of its audited out-links deviates by more
/// than `tolerance` (relative).
pub fn audit(
    announced: &DistanceMatrix,
    mut estimate: impl FnMut(NodeId, NodeId) -> f64,
    audited_nodes: &[NodeId],
    links_per_node: usize,
    tolerance: f64,
) -> Vec<AuditFinding> {
    let n = announced.len();
    audited_nodes
        .iter()
        .map(|&u| {
            let mut max_dev: f64 = 0.0;
            let mut audited = 0usize;
            for j in 0..n {
                if j == u.index() || audited >= links_per_node {
                    continue;
                }
                let v = NodeId::from_index(j);
                let est = estimate(u, v);
                if !est.is_finite() || est <= 0.0 {
                    continue;
                }
                let ann = announced.get(u, v);
                max_dev = max_dev.max((ann - est).abs() / est);
                audited += 1;
            }
            AuditFinding {
                node: u,
                max_deviation: max_dev,
                flagged: max_dev > tolerance,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |i, j| ((i * 3 + j * 7) % 11 + 2) as f64)
    }

    #[test]
    fn announced_inflates_only_liar_rows() {
        let t = truth(5);
        let cfg = CheatConfig::single(NodeId(2));
        let a = cfg.announced_matrix(&t);
        for i in 0..5 {
            for j in 0..5 {
                if i == j {
                    continue;
                }
                let expect = if i == 2 { t.at(i, j) * 2.0 } else { t.at(i, j) };
                assert_eq!(a.at(i, j), expect);
            }
        }
    }

    #[test]
    fn honest_config_is_identity() {
        let t = truth(4);
        assert_eq!(CheatConfig::honest().announced_matrix(&t), t);
    }

    #[test]
    fn first_n_builds_the_sweep_population() {
        let cfg = CheatConfig::first_n(3, 2.0);
        assert!(cfg.is_free_rider(NodeId(0)));
        assert!(cfg.is_free_rider(NodeId(2)));
        assert!(!cfg.is_free_rider(NodeId(3)));
    }

    #[test]
    fn audit_flags_exactly_the_liars() {
        let t = truth(8);
        let cfg = CheatConfig {
            free_riders: vec![NodeId(1), NodeId(6)],
            inflation: 2.0,
        };
        let announced = cfg.announced_matrix(&t);
        let all: Vec<NodeId> = (0..8).map(NodeId).collect();
        // Perfect estimator (truth itself), 20% tolerance.
        let findings = audit(&announced, |u, v| t.get(u, v), &all, 4, 0.2);
        for f in &findings {
            assert_eq!(
                f.flagged,
                cfg.is_free_rider(f.node),
                "audit mismatch at {:?}",
                f.node
            );
        }
    }

    #[test]
    fn audit_tolerates_noisy_estimates() {
        let t = truth(8);
        let cfg = CheatConfig::single(NodeId(3));
        let announced = cfg.announced_matrix(&t);
        let all: Vec<NodeId> = (0..8).map(NodeId).collect();
        // Estimator with ±10% deterministic wobble; tolerance 40% still
        // separates honest (≤10% dev) from ×2 liars (~100% dev).
        let findings = audit(
            &announced,
            |u, v| t.get(u, v) * (1.0 + 0.1 * ((u.0 + v.0) % 3) as f64 / 2.0 - 0.05),
            &all,
            5,
            0.4,
        );
        for f in &findings {
            assert_eq!(f.flagged, f.node == NodeId(3));
        }
    }

    #[test]
    fn deflation_also_detected() {
        let t = truth(6);
        let cfg = CheatConfig {
            free_riders: vec![NodeId(0)],
            inflation: 0.4,
        };
        let announced = cfg.announced_matrix(&t);
        let findings = audit(
            &announced,
            |u, v| t.get(u, v),
            &[NodeId(0), NodeId(1)],
            3,
            0.3,
        );
        assert!(findings[0].flagged);
        assert!(!findings[1].flagged);
    }
}
