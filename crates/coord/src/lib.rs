//! Vivaldi network coordinates — the passive delay estimator of EGOIST.
//!
//! The paper's "pyxida" mode (§4.1) queries a virtual coordinate system
//! instead of active pings: "Using pyxida, delay estimates are available
//! through a simple query to the pyxida system … produces less accurate
//! estimates, but consumes much less bandwidth." pyxida implements the
//! Vivaldi algorithm (Dabek et al., SIGCOMM'04) with height vectors; this
//! crate implements the same algorithm from scratch.
//!
//! * [`Coord`] — a Euclidean coordinate plus a *height* modeling the
//!   access-link detour that Euclidean embeddings cannot express.
//! * [`VivaldiNode`] — one node's adaptive-timestep update rule.
//! * [`system::CoordinateSystem`] — a gossiping population of Vivaldi
//!   nodes driven by RTT samples; exposes the "one query returns distances
//!   to everyone" API that EGOIST's pyxida mode uses (overhead
//!   `≈ (320 + 32n)/T` bps per node, §4.3).

pub mod system;

pub use system::CoordinateSystem;

/// Dimensionality of the Euclidean part (pyxida used low-dimensional
/// spaces; 2D + height is the classic Vivaldi configuration).
pub const DIM: usize = 2;

/// A Vivaldi coordinate: Euclidean position + height (ms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coord {
    pub pos: [f64; DIM],
    pub height: f64,
}

impl Default for Coord {
    fn default() -> Self {
        Coord {
            pos: [0.0; DIM],
            height: 0.1,
        }
    }
}

impl Coord {
    /// Predicted one-way-ish distance between two coordinates:
    /// Euclidean distance plus both heights (ms).
    pub fn distance(&self, other: &Coord) -> f64 {
        let mut s = 0.0;
        for d in 0..DIM {
            s += (self.pos[d] - other.pos[d]).powi(2);
        }
        s.sqrt() + self.height + other.height
    }

    /// Unit vector from `other` toward `self` with the height dimension;
    /// when the Euclidean parts coincide, a deterministic tiny separation
    /// is used (the random-direction kick of the original paper, made
    /// deterministic by the caller-supplied `tiebreak` value).
    fn direction_from(&self, other: &Coord, tiebreak: f64) -> ([f64; DIM], f64) {
        let mut v = [0.0; DIM];
        let mut norm = 0.0;
        for (d, vd) in v.iter_mut().enumerate() {
            *vd = self.pos[d] - other.pos[d];
            norm += *vd * *vd;
        }
        norm = norm.sqrt();
        if norm < 1e-9 {
            // Deterministic pseudo-random direction.
            let ang = tiebreak * std::f64::consts::TAU;
            v[0] = ang.cos();
            v[1] = ang.sin();
            norm = 1.0;
        }
        for x in v.iter_mut() {
            *x /= norm;
        }
        (v, 1.0)
    }
}

/// One node's Vivaldi state with the adaptive timestep of the original
/// algorithm (confidence-weighted).
#[derive(Clone, Debug)]
pub struct VivaldiNode {
    pub coord: Coord,
    /// Relative error estimate in [0, 1]+; starts pessimistic.
    pub error: f64,
    /// Tuning constant for the timestep (c_c in the Vivaldi paper).
    pub cc: f64,
    /// Tuning constant for the error EWMA (c_e).
    pub ce: f64,
    samples: u64,
}

impl Default for VivaldiNode {
    fn default() -> Self {
        VivaldiNode {
            coord: Coord::default(),
            error: 1.0,
            cc: 0.25,
            ce: 0.25,
            samples: 0,
        }
    }
}

impl VivaldiNode {
    /// Incorporate one RTT/2 sample toward a peer with coordinate
    /// `peer_coord` and error estimate `peer_error`. `measured` is the
    /// measured one-way delay (ms).
    pub fn observe(&mut self, peer_coord: &Coord, peer_error: f64, measured: f64) {
        if !measured.is_finite() || measured <= 0.0 {
            return;
        }
        self.samples += 1;
        let predicted = self.coord.distance(peer_coord);
        // Sample confidence weight: balances local vs remote error.
        let w = if self.error + peer_error > 0.0 {
            self.error / (self.error + peer_error)
        } else {
            0.5
        };
        // Relative error of this sample.
        let es = (predicted - measured).abs() / measured;
        // Update local error estimate (EWMA weighted by confidence).
        self.error = (es * self.ce * w + self.error * (1.0 - self.ce * w)).clamp(0.0, 2.0);
        // Adaptive timestep.
        let delta = self.cc * w;
        let force = delta * (measured - predicted);
        // Deterministic tiebreak derived from the sample count.
        let tiebreak = (self.samples as f64 * 0.618_033_988_749_895) % 1.0;
        let (dir, _) = self.coord.direction_from(peer_coord, tiebreak);
        for (p, d) in self.coord.pos.iter_mut().zip(dir.iter()) {
            *p += force * d;
        }
        // Height absorbs the non-Euclidean residual; never below a floor.
        self.coord.height = (self.coord.height + force * 0.1).max(0.05);
    }

    /// Number of samples absorbed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_positive() {
        let a = Coord {
            pos: [0.0, 0.0],
            height: 1.0,
        };
        let b = Coord {
            pos: [3.0, 4.0],
            height: 2.0,
        };
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!((a.distance(&b) - 8.0).abs() < 1e-12); // 5 + 1 + 2
    }

    #[test]
    fn observe_moves_toward_truth() {
        let mut n = VivaldiNode::default();
        let peer = Coord {
            pos: [10.0, 0.0],
            height: 0.1,
        };
        let before = (n.coord.distance(&peer) - 20.0).abs();
        for _ in 0..50 {
            n.observe(&peer, 0.5, 20.0);
        }
        let after = (n.coord.distance(&peer) - 20.0).abs();
        assert!(
            after < before,
            "prediction error should shrink: {before} → {after}"
        );
    }

    #[test]
    fn error_estimate_decreases_with_consistent_samples() {
        let mut n = VivaldiNode::default();
        let peer = Coord {
            pos: [5.0, 5.0],
            height: 0.1,
        };
        for _ in 0..100 {
            n.observe(&peer, 0.2, 12.0);
        }
        assert!(n.error < 1.0);
    }

    #[test]
    fn bogus_samples_are_ignored() {
        let mut n = VivaldiNode::default();
        let c0 = n.coord;
        n.observe(&Coord::default(), 0.5, f64::NAN);
        n.observe(&Coord::default(), 0.5, -3.0);
        n.observe(&Coord::default(), 0.5, 0.0);
        assert_eq!(n.coord, c0);
        assert_eq!(n.samples(), 0);
    }

    #[test]
    fn coincident_coordinates_separate() {
        let mut a = VivaldiNode::default();
        let b = VivaldiNode::default();
        a.observe(&b.coord, 1.0, 30.0);
        let eucl: f64 = a
            .coord
            .pos
            .iter()
            .zip(&b.coord.pos)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(eucl > 0.0, "tiebreak kick must separate coincident nodes");
    }

    #[test]
    fn height_never_negative() {
        let mut n = VivaldiNode::default();
        let peer = Coord {
            pos: [1.0, 0.0],
            height: 50.0,
        };
        for _ in 0..200 {
            n.observe(&peer, 0.1, 0.5); // much smaller than predicted
        }
        assert!(n.coord.height >= 0.05);
    }
}
