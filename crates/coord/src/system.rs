//! A gossiping population of Vivaldi nodes.
//!
//! Reproduces the pyxida deployment model: every node keeps a Vivaldi
//! coordinate, periodically samples the RTT to a few random peers, and any
//! node can ask the system for predicted distances to all other nodes with
//! a single query (§4.1, §4.3: one request/reply per wiring epoch,
//! ≈ `(320 + 32n)/T` bps).

use crate::{Coord, VivaldiNode};
use egoist_graph::DistanceMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulated coordinate system over `n` nodes.
#[derive(Debug)]
pub struct CoordinateSystem {
    nodes: Vec<VivaldiNode>,
    rng: StdRng,
    /// Gossip fan-out per round (peers sampled by each node).
    pub fanout: usize,
    rounds_run: u64,
}

impl CoordinateSystem {
    /// Fresh system with all nodes at the origin.
    pub fn new(n: usize, seed: u64) -> Self {
        CoordinateSystem {
            nodes: vec![VivaldiNode::default(); n],
            rng: StdRng::seed_from_u64(seed ^ 0xC00D),
            fanout: 4,
            rounds_run: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Run one gossip round: each node measures `fanout` random peers.
    /// `true_delay(i, j)` must return the current one-way delay (ms); it is
    /// called once per sampled ordered pair. The coordinate update then
    /// uses the *round trip* halved, as EGOIST's ping mode does.
    pub fn gossip_round(&mut self, mut true_delay: impl FnMut(usize, usize) -> f64) {
        let n = self.nodes.len();
        if n < 2 {
            return;
        }
        for i in 0..n {
            for _ in 0..self.fanout {
                let j = loop {
                    let j = self.rng.random_range(0..n);
                    if j != i {
                        break j;
                    }
                };
                let owd = 0.5 * (true_delay(i, j) + true_delay(j, i));
                let (peer_coord, peer_error) = (self.nodes[j].coord, self.nodes[j].error);
                self.nodes[i].observe(&peer_coord, peer_error, owd);
            }
        }
        self.rounds_run += 1;
    }

    /// Run `rounds` gossip rounds against a static delay matrix.
    pub fn converge(&mut self, delays: &DistanceMatrix, rounds: usize) {
        for _ in 0..rounds {
            self.gossip_round(|i, j| delays.at(i, j));
        }
    }

    /// Coordinate of node `i`.
    pub fn coord(&self, i: usize) -> Coord {
        self.nodes[i].coord
    }

    /// The pyxida query: predicted delays from `i` to every node
    /// (a single request/reply on the wire).
    pub fn query_all(&self, i: usize) -> Vec<f64> {
        let ci = self.nodes[i].coord;
        self.nodes
            .iter()
            .enumerate()
            .map(|(j, nj)| if i == j { 0.0 } else { ci.distance(&nj.coord) })
            .collect()
    }

    /// Full predicted distance matrix.
    pub fn predicted_matrix(&self) -> DistanceMatrix {
        let n = self.len();
        DistanceMatrix::from_fn(n, |i, j| self.nodes[i].coord.distance(&self.nodes[j].coord))
    }

    /// Median relative prediction error against a ground-truth matrix
    /// (symmetrized, since coordinates cannot express asymmetry).
    pub fn median_relative_error(&self, truth: &DistanceMatrix) -> f64 {
        let n = self.len();
        let mut errs = Vec::with_capacity(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let t = 0.5 * (truth.at(i, j) + truth.at(j, i));
                if t <= 0.0 || !t.is_finite() {
                    continue;
                }
                let p = self.nodes[i].coord.distance(&self.nodes[j].coord);
                errs.push((p - t).abs() / t);
            }
        }
        if errs.is_empty() {
            return 0.0;
        }
        errs.sort_by(f64::total_cmp);
        errs[errs.len() / 2]
    }

    /// Gossip rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egoist_netsim::DelayModel;

    /// On a Euclidean-ish delay space Vivaldi must reach a usable embedding.
    #[test]
    fn converges_on_planetlab_like_space() {
        let model = DelayModel::planetlab_50(42);
        let truth = model.base().clone();
        let mut cs = CoordinateSystem::new(50, 42);
        cs.converge(&truth, 60);
        let err = cs.median_relative_error(&truth);
        assert!(
            err < 0.35,
            "median relative error after convergence: {err:.3}"
        );
    }

    #[test]
    fn more_rounds_reduce_error() {
        let model = DelayModel::planetlab_50(7);
        let truth = model.base().clone();
        let mut cs = CoordinateSystem::new(50, 7);
        cs.converge(&truth, 3);
        let early = cs.median_relative_error(&truth);
        cs.converge(&truth, 57);
        let late = cs.median_relative_error(&truth);
        assert!(
            late < early,
            "error should decrease: {early:.3} → {late:.3}"
        );
    }

    #[test]
    fn query_all_matches_pairwise_distance() {
        let model = DelayModel::planetlab_50(9);
        let mut cs = CoordinateSystem::new(50, 9);
        cs.converge(model.base(), 10);
        let q = cs.query_all(3);
        assert_eq!(q.len(), 50);
        assert_eq!(q[3], 0.0);
        for (j, &qj) in q.iter().enumerate() {
            if j != 3 {
                assert!((qj - cs.coord(3).distance(&cs.coord(j))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn predicted_matrix_is_symmetric() {
        let model = DelayModel::planetlab_50(11);
        let mut cs = CoordinateSystem::new(50, 11);
        cs.converge(model.base(), 20);
        let p = cs.predicted_matrix();
        for i in 0..50 {
            for j in 0..50 {
                assert!((p.at(i, j) - p.at(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let model = DelayModel::planetlab_50(5);
        let run = |seed| {
            let mut cs = CoordinateSystem::new(50, seed);
            cs.converge(model.base(), 15);
            cs.query_all(0)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn tiny_systems_do_not_panic() {
        let mut cs = CoordinateSystem::new(1, 0);
        cs.gossip_round(|_, _| 1.0);
        assert_eq!(cs.query_all(0), vec![0.0]);
        let mut empty = CoordinateSystem::new(0, 0);
        empty.gossip_round(|_, _| 1.0);
        assert!(empty.is_empty());
    }
}
