//! Watch the closed loop converge: epoch-by-epoch traffic replay.
//!
//! Runs a Zipf/gravity hot-spot workload over a best-response overlay on
//! the Load metric with congestion feedback enabled, printing one row
//! per epoch. Early on, announced load has not yet caught up with the
//! traffic the overlay carries; as the EWMA sensors converge, BR
//! re-wires away from hot relays and the p99 flow latency settles.
//!
//! Run with: `cargo run --release --example traffic_replay`

use egoist::core::policies::PolicyKind;
use egoist::core::sim::Metric;
use egoist::traffic::demand::WorkloadKind;
use egoist::traffic::engine::{TrafficConfig, TrafficEngine};

fn main() {
    let mut cfg = TrafficConfig::new(32, 4, PolicyKind::BestResponse, Metric::Load, 42);
    cfg.sim.epochs = 16;
    cfg.sim.warmup_epochs = 5;
    cfg.workload = WorkloadKind::Gravity { exponent: 1.2 };
    cfg.offered_mbps = 200.0;
    cfg.flows_per_epoch = 48;

    println!("closed-loop traffic replay: gravity workload, BR on Load, n=32 k=4");
    println!(
        "{:>5} {:>10} {:>10} {:>8} {:>10} {:>10} {:>9} {:>6}",
        "epoch", "offered", "delivered", "ratio", "p50 ms", "p99 ms", "stretch", "rewire"
    );
    let report = TrafficEngine::run(&cfg);
    for e in &report.epochs {
        println!(
            "{:>5} {:>10.1} {:>10.1} {:>8.3} {:>10.1} {:>10.1} {:>9.2} {:>6}",
            e.epoch,
            e.offered_mbps,
            e.delivered_mbps,
            e.delivery_ratio,
            e.p50_latency_ms,
            e.p99_latency_ms,
            e.mean_stretch,
            e.rewirings,
        );
    }
    println!(
        "\nsteady-state summary (epochs >= {}):",
        report.warmup_epochs
    );
    println!(
        "  delivered {:.1}/{:.1} Mbps (ratio {:.3}), p50 {:.1} ms, p99 {:.1} ms, stretch {:.2}",
        report.summary.delivered_mbps,
        report.summary.offered_mbps,
        report.summary.delivery_ratio,
        report.summary.p50_latency_ms,
        report.summary.p99_latency_ms,
        report.summary.mean_stretch,
    );
    println!("\nfull JSON report:\n{}", report.to_json());
}
