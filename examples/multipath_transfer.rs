//! Multipath file transfer (§6.1, Fig. 9/10 scenario).
//!
//! A source wants to push a large file to a target. Instead of one
//! session over the direct IP path — throttled by the per-session rate
//! limit at its AS's peering point — it opens one session through each of
//! its k EGOIST neighbors, multiplying throughput.
//!
//! Run with: `cargo run --release --example multipath_transfer`

use egoist::core::multipath::{analyze_pair, bandwidth_overlay};
use egoist::core::stats;
use egoist_graph::NodeId;
use egoist_netsim::BandwidthModel;

fn main() {
    let n = 50;
    let k = 5;
    let seed = 7;
    println!("Multipath transfer over a bandwidth-wired EGOIST overlay (n={n}, k={k})\n");

    let bw = BandwidthModel::with_defaults(n, seed);
    let overlay = bandwidth_overlay(&bw, k, 2);

    // One concrete pair, narrated.
    let (src, dst) = (NodeId(3), NodeId(41));
    let r = analyze_pair(&overlay, &bw, src, dst);
    println!("source {src} → target {dst}:");
    println!(
        "  direct IP session (rate-capped):   {:>8.1} Mbps",
        r.direct
    );
    println!(
        "  {k} parallel first-hop sessions:     {:>8.1} Mbps  ({:.1}x)",
        r.parallel,
        r.parallel_gain()
    );
    println!(
        "  max-flow bound (all peers help):   {:>8.1} Mbps  ({:.1}x)",
        r.max_flow_bound,
        r.max_flow_gain()
    );
    println!(
        "  first-hop neighbors used: {:?}\n",
        overlay.out_neighbors(src).collect::<Vec<_>>()
    );

    // A transfer-time estimate for a 10 GB file.
    let gb = 10.0 * 8.0 * 1024.0; // Mbit
    println!("10 GB transfer time:");
    println!("  direct:    {:>8.1} min", gb / r.direct / 60.0);
    println!("  multipath: {:>8.1} min\n", gb / r.parallel / 60.0);

    // Population view.
    let members: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
    let mut gains = Vec::new();
    for &s in &members {
        for &t in &members {
            if s != t {
                gains.push(analyze_pair(&overlay, &bw, s, t).parallel_gain());
            }
        }
    }
    println!(
        "across all {} ordered pairs: mean gain {:.2}x, median {:.2}x, p95 {:.2}x",
        gains.len(),
        stats::mean(&gains),
        stats::percentile(&gains, 50.0),
        stats::percentile(&gains, 95.0),
    );
}
