//! Churn resilience (§3.3/§4.4 scenario): how HybridBR's donated-link
//! backbone keeps the overlay efficient when nodes flap.
//!
//! Run with: `cargo run --release --example churn_resilience`

use egoist::core::policies::PolicyKind;
use egoist::core::sim::{run, Metric, SimConfig};
use egoist_netsim::ChurnModel;

fn main() {
    let k = 5;
    let epochs = 25;
    println!("Churn resilience: n=50, k={k}, delay metric, efficiency vs churn rate\n");
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "churn", "BR", "HybridBR", "k-Closest", "k-Random", "k-Regular"
    );

    for divisor in [1.0, 20.0, 150.0, 600.0] {
        let mut model = ChurnModel::planetlab_like(50, 11);
        model.timescale_divisor = divisor;
        let trace = model.generate(epochs as f64 * 60.0);
        let rate = trace.churn_rate();

        let mut row = format!("{rate:>10.5}");
        for policy in [
            PolicyKind::BestResponse,
            PolicyKind::HybridBestResponse { k2: 2 },
            PolicyKind::Closest,
            PolicyKind::Random,
            PolicyKind::Regular,
        ] {
            let mut cfg = SimConfig::baseline(k, policy, Metric::DelayPing, 11);
            cfg.epochs = epochs;
            cfg.warmup_epochs = epochs / 3;
            cfg.churn = Some(trace.clone());
            let eff = run(cfg).mean_efficiency(epochs / 3);
            row.push_str(&format!(" {:>10.5}", eff));
        }
        println!("{row}");
    }

    println!(
        "\nReading the table: at mild churn pure BR wins — donating two links\n\
         to the backbone costs performance for nothing. As the churn rate\n\
         climbs toward a membership event every couple of seconds, HybridBR's\n\
         always-repaired cycles keep efficiency up while the static heuristics\n\
         (especially k-Regular, which never repairs) decay — the §4.4 story."
    );
}
