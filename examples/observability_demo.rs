//! Observability demo: run a small closed-loop traffic experiment with
//! instrumentation and the flight recorder enabled, then print what the
//! `egoist-obs` registry saw — the Prometheus text exposition, the
//! deterministic JSON export, and the last few recorded events.
//!
//! Everything except span durations (`*_ns`) is a pure function of the
//! seed: run this twice and diff the counter/histogram lines — they are
//! bit-identical.
//!
//! Run with: `cargo run --release --example observability_demo`

use egoist::core::policies::PolicyKind;
use egoist::core::sim::Metric;
use egoist::traffic::engine::{TrafficConfig, TrafficEngine};

fn main() {
    egoist::obs::enable();
    egoist::obs::enable_trace();

    let mut cfg = TrafficConfig::new(32, 4, PolicyKind::BestResponse, Metric::DelayPing, 42);
    cfg.sim.epochs = 8;
    cfg.sim.warmup_epochs = 3;
    cfg.flows_per_epoch = 48;
    let report = TrafficEngine::run(&cfg);
    println!(
        "# ran {}: delivered {:.1}/{:.1} Mbps over {} epochs\n",
        report.config_label,
        report.summary.delivered_mbps,
        report.summary.offered_mbps,
        report.epochs.len()
    );

    let reg = egoist::obs::registry();

    println!("## Prometheus exposition\n");
    print!("{}", reg.to_prometheus());

    println!("\n## JSON export (schema egoist-obs/v1)\n");
    println!("{}", reg.to_json());

    println!(
        "\n## Flight recorder (last 10 of {} events)\n",
        reg.events_recorded()
    );
    for ev in reg.events().iter().rev().take(10).rev() {
        let fields: Vec<String> = ev
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        println!(
            "  [{:>12} ns] #{} {} {}",
            ev.t_ns,
            ev.seq,
            ev.name,
            fields.join(" ")
        );
    }
}
