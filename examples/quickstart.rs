//! Quickstart: build a 50-node EGOIST overlay in simulation, compare all
//! neighbor-selection policies on the delay metric, and print routing
//! costs — the 60-second tour of the library.
//!
//! Run with: `cargo run --release --example quickstart`

use egoist::core::policies::PolicyKind;
use egoist::core::sim::{full_mesh_reference, run, Metric, SimConfig};

fn main() {
    let k = 4;
    let seed = 42;
    println!("EGOIST quickstart: n=50 PlanetLab-like overlay, k={k}, delay metric\n");

    // The full mesh (RON-style, k = n-1) lower-bounds every policy.
    let base = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, seed);
    let mesh = full_mesh_reference(&base);
    println!(
        "{:<22} {:>14} {:>14}",
        "policy", "mean cost (ms)", "vs full mesh"
    );
    println!("{:<22} {:>14.2} {:>14.2}", "full mesh (k=49)", mesh, 1.0);

    for (label, policy) in [
        ("BR (selfish)", PolicyKind::BestResponse),
        (
            "BR(eps=0.1)",
            PolicyKind::EpsilonBestResponse { epsilon: 0.1 },
        ),
        ("HybridBR (k2=2)", PolicyKind::HybridBestResponse { k2: 2 }),
        ("k-Closest", PolicyKind::Closest),
        ("k-Random", PolicyKind::Random),
        ("k-Regular", PolicyKind::Regular),
    ] {
        let mut cfg = base.clone();
        cfg.policy = policy;
        let res = run(cfg);
        let cost = res.mean_individual_cost(base.warmup_epochs);
        println!("{label:<22} {cost:>14.2} {:>14.2}", cost / mesh);
    }

    println!(
        "\nSelfish neighbor selection (BR) should sit within a few percent of the\n\
         full mesh while maintaining only {k} links per node instead of 49 —\n\
         that is the paper's headline result (Fig. 1)."
    );
}
