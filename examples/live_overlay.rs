//! A live EGOIST overlay on real UDP sockets (loopback).
//!
//! Spawns a bootstrap service and ten protocol nodes, each on its own
//! 127.0.0.1 UDP port, with sped-up timers. The nodes join through the
//! bootstrap, measure each other with ping/pong, flood link-state
//! announcements and selfishly re-wire. After a few epochs the example
//! prints every node's chosen neighbors, delay estimates, routing table
//! and protocol overhead.
//!
//! Run with: `cargo run --release --example live_overlay`

use egoist_graph::NodeId;
use egoist_proto::bootstrap::{BootstrapServer, Registry};
use egoist_proto::message::MessageClass;
use egoist_proto::{EgoistNode, NodeConfig, UdpTransport};
use std::time::Duration;

const N: usize = 10;
const K: usize = 3;
const BOOT: NodeId = NodeId(100);

fn main() -> std::io::Result<()> {
    tokio::runtime::block_on(run())
}

async fn run() -> std::io::Result<()> {
    println!("Live EGOIST overlay: {N} nodes on loopback UDP, k={K}\n");

    // Bind everyone first so the full address roster is known, then
    // cross-register (the bootstrap handles membership, the roster is the
    // address book a deployment would ship out of band).
    let mut transports = Vec::new();
    for i in 0..N {
        transports.push(UdpTransport::bind(NodeId::from_index(i), "127.0.0.1:0").await?);
    }
    let boot_transport = UdpTransport::bind(BOOT, "127.0.0.1:0").await?;
    let boot_addr = boot_transport.local_addr()?;
    let addrs: Vec<_> = transports
        .iter()
        .map(|t| t.local_addr().expect("bound"))
        .collect();
    for (i, t) in transports.iter().enumerate() {
        t.add_peer(BOOT, boot_addr);
        for (j, &a) in addrs.iter().enumerate() {
            if i != j {
                t.add_peer(NodeId::from_index(j), a);
            }
        }
        boot_transport.add_peer(NodeId::from_index(i), addrs[i]);
    }
    tokio::spawn(BootstrapServer::new(boot_transport, Registry::default()).run());

    // Spawn the nodes with second-scale timers (a real deployment uses
    // T=60 s; loopback RTTs make convergence fast).
    let mut handles = Vec::new();
    for (i, t) in transports.into_iter().enumerate() {
        let mut cfg = NodeConfig::new(NodeId::from_index(i), N, K);
        cfg.epoch = Duration::from_secs(2);
        cfg.announce_interval = Duration::from_millis(700);
        cfg.ping_interval = Duration::from_secs(1);
        cfg.liveness_timeout = Duration::from_secs(5);
        cfg.bootstrap = Some(BOOT);
        handles.push(EgoistNode::new(cfg, t).spawn());
        tokio::time::sleep(Duration::from_millis(50)).await;
    }

    println!("running 5 wiring epochs...\n");
    tokio::time::sleep(Duration::from_secs(10)).await;

    println!(
        "{:<6} {:<18} {:<12} {:<10} {:<10}",
        "node", "neighbors", "routes", "rewired", "lsa bytes"
    );
    for (i, h) in handles.iter().enumerate() {
        let v = h.snapshot();
        let routes = (0..N)
            .filter(|&j| j != i && v.next_hops[j].is_some())
            .count();
        println!(
            "{:<6} {:<18} {:<12} {:<10} {:<10}",
            format!("v{i}"),
            format!("{:?}", v.wiring),
            format!("{routes}/{}", N - 1),
            v.rewirings,
            v.overhead.bytes(MessageClass::LinkState),
        );
    }

    // One routing-table walk end to end.
    let v0 = handles[0].snapshot();
    if let Some(hop) = v0.next_hops[N - 1] {
        println!("\nv0 routes to v{} via first hop {hop}", N - 1);
    }

    for h in handles {
        h.stop().await;
    }
    println!("\nall nodes left the overlay cleanly");
    Ok(())
}
