//! Integration: the closed-loop data plane end to end.
//!
//! (a) determinism — one seed pins the entire run, down to the
//!     serialized report bytes;
//! (b) the paper's argument carried to the data plane — under the Load
//!     metric with congestion feedback, best-response rewiring routes
//!     flows around the hot spots its own traffic creates and beats
//!     Random wiring on p99 flow latency on a 32-node Zipf workload;
//! (c) the feedback itself is load-bearing: turning it off changes the
//!     realized latency profile of the very same configuration.

use egoist::core::policies::PolicyKind;
use egoist::core::sim::Metric;
use egoist::traffic::demand::WorkloadKind;
use egoist::traffic::engine::{TrafficConfig, TrafficEngine};

/// 32-node Zipf/gravity hot-spot workload on the Load metric.
fn zipf32(policy: PolicyKind, seed: u64, closed_loop: bool) -> TrafficConfig {
    let mut cfg = TrafficConfig::new(32, 4, policy, Metric::Load, seed);
    cfg.sim.epochs = 12;
    cfg.sim.warmup_epochs = 4;
    cfg.workload = WorkloadKind::Gravity { exponent: 1.2 };
    cfg.offered_mbps = 200.0;
    cfg.flows_per_epoch = 48;
    cfg.feedback.enabled = closed_loop;
    cfg
}

#[test]
fn same_seed_bit_identical_traffic_report() {
    let a = TrafficEngine::run(&zipf32(PolicyKind::BestResponse, 11, true));
    let b = TrafficEngine::run(&zipf32(PolicyKind::BestResponse, 11, true));
    assert_eq!(a.to_json(), b.to_json(), "same seed must be bit-identical");
    let c = TrafficEngine::run(&zipf32(PolicyKind::BestResponse, 12, true));
    assert_ne!(a.to_json(), c.to_json(), "different seeds must differ");
}

#[test]
fn closed_loop_br_cuts_p99_latency_vs_random() {
    let br = TrafficEngine::run(&zipf32(PolicyKind::BestResponse, 7, true));
    let rnd = TrafficEngine::run(&zipf32(PolicyKind::Random, 7, true));
    let (b, r) = (br.summary.p99_latency_ms, rnd.summary.p99_latency_ms);
    assert!(
        b < r,
        "closed-loop BR must strictly cut p99 flow latency vs Random: {b:.1} vs {r:.1} ms"
    );
    // The mechanism is re-wiring: BR keeps adapting to the load its own
    // traffic induces.
    assert!(
        br.summary.mean_rewirings > 0.0,
        "BR must re-wire in steady state under the closed loop"
    );
}

#[test]
fn traffic_induced_rewiring_changes_realized_p99() {
    // The same BR configuration with and without feedback: the only
    // difference is whether carried traffic is charged back into the
    // underlay. The announced-load stream the policy sees differs, so
    // rewiring decisions — and the realized p99 — differ.
    let closed = TrafficEngine::run(&zipf32(PolicyKind::BestResponse, 9, true));
    let open = TrafficEngine::run(&zipf32(PolicyKind::BestResponse, 9, false));
    assert_ne!(
        closed.summary.p99_latency_ms.to_bits(),
        open.summary.p99_latency_ms.to_bits(),
        "feedback must change realized p99 latency"
    );
    // And under feedback the overlay keeps adapting: wiring differs in
    // steady state, visible as a different rewiring count.
    assert!(closed.summary.flows_measured > 0 && open.summary.flows_measured > 0);
}

#[test]
fn backpressure_outdelivers_shortest_path_at_saturation() {
    // Past the single-path knee, differential-backlog forwarding finds
    // the capacity that path-committed routing leaves on the table.
    use egoist::traffic::DataPolicyKind;
    let mk = |dp| {
        let mut cfg = zipf32(PolicyKind::BestResponse, 21, true);
        cfg.offered_mbps = 3000.0;
        cfg.data_policy = dp;
        TrafficEngine::run(&cfg).summary.delivered_mbps
    };
    let spf = mk(DataPolicyKind::ShortestPath);
    let bp = mk(DataPolicyKind::Backpressure);
    assert!(
        bp > spf,
        "backpressure must out-deliver spf at saturation: {bp:.1} vs {spf:.1} Mbps"
    );
}

#[test]
fn delay_aware_hysteresis_bounds_route_flapping() {
    use egoist::traffic::DataPolicyKind;
    let mk = |hysteresis: f64| {
        let mut cfg = zipf32(PolicyKind::BestResponse, 27, true);
        cfg.offered_mbps = 2000.0; // saturated: queue estimates swing
        cfg.data_policy = DataPolicyKind::DelayAware;
        cfg.delay_aware.hysteresis = hysteresis;
        TrafficEngine::run(&cfg)
    };
    let with = mk(0.25);
    let without = mk(0.0);
    assert!(
        with.summary.route_changes <= without.summary.route_changes,
        "hysteresis must not flap more: {} vs {}",
        with.summary.route_changes,
        without.summary.route_changes
    );
    // Bounded in absolute terms too: well under one switch per pair per
    // steady epoch (48 flows × 8 steady epochs = 384 opportunities).
    assert!(
        with.summary.route_changes < 100,
        "route changes unbounded: {}",
        with.summary.route_changes
    );
    assert!(with.summary.delivered_mbps > 0.0);
}

#[test]
fn delivery_survives_churn() {
    use egoist::netsim::ChurnModel;
    let mut cfg = zipf32(PolicyKind::BestResponse, 5, true);
    let mut model = ChurnModel::planetlab_like(32, 5);
    model.timescale_divisor = 60.0;
    cfg.sim.churn = Some(model.generate(cfg.sim.epochs as f64 * cfg.sim.epoch_secs));
    let r = TrafficEngine::run(&cfg);
    assert!(
        r.summary.delivery_ratio > 0.3,
        "the overlay must keep delivering under churn: {}",
        r.summary.delivery_ratio
    );
}
