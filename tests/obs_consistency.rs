//! Cross-layer consistency of the `egoist-obs` registry.
//!
//! Three claims pinned here:
//!
//! 1. the protocol layer's per-message-class registry counters agree
//!    *exactly* with the per-node [`OverheadCounters`] ledgers summed
//!    over a full overlay run — the two accounting paths (obs registry
//!    vs. the §4.3 overhead accountant) see every frame the same way;
//! 2. instrumentation is invisible to the simulation: a closed-loop
//!    traffic run produces a byte-identical report whether obs (and the
//!    flight recorder) is on or off;
//! 3. obs counters are themselves deterministic: two identical runs
//!    export identical counter and histogram values.
//!
//! The enable/trace flags are process-global, so every test here takes
//! one shared lock and restores the disabled state before releasing it.

use egoist::graph::{DistanceMatrix, NodeId};
use egoist::proto::bootstrap::{BootstrapServer, Registry};
use egoist::proto::message::MessageClass;
use egoist::proto::{EgoistNode, NodeConfig, SimNet};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

const BOOT: NodeId = NodeId(1000);

#[test]
fn proto_registry_counters_match_overhead_ledgers() {
    let _g = serial();
    let reg = egoist::obs::registry();
    reg.reset();
    egoist::obs::enable();

    let views = tokio::runtime::block_on_paused(async {
        let n = 6;
        let k = 2;
        let delays = DistanceMatrix::from_fn(n, |i, j| 4.0 + ((i * 3 + j) % 7) as f64);
        let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    big.set_at(i, j, delays.at(i, j));
                }
            }
        }
        // A clean net: no corrupted frames, so decode_errors stays 0 and
        // every sent frame is accounted on both ledgers.
        let net = SimNet::clean(big);
        tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
        let mut handles = Vec::new();
        for i in 0..n {
            let mut cfg = NodeConfig::new(NodeId::from_index(i), n, k);
            cfg.epoch = Duration::from_secs(10);
            cfg.announce_interval = Duration::from_secs(3);
            cfg.ping_interval = Duration::from_secs(5);
            cfg.liveness_timeout = Duration::from_secs(12);
            cfg.bootstrap = Some(BOOT);
            handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
            tokio::time::sleep(Duration::from_millis(150)).await;
        }
        tokio::time::sleep(Duration::from_secs(60)).await;
        // Keep the shared views alive past stop(): the node publishes a
        // final snapshot (including its overhead ledger) on shutdown, and
        // the Leave frames it sends then are counted on both sides.
        let views: Vec<_> = handles
            .iter()
            .map(|h| std::sync::Arc::clone(&h.view))
            .collect();
        for h in handles {
            h.stop().await;
        }
        views
    });

    egoist::obs::disable();

    for class in MessageClass::ALL {
        let label = class.label();
        let ledger_frames: u64 = views.iter().map(|v| v.read().overhead.frames(class)).sum();
        let ledger_bytes: u64 = views.iter().map(|v| v.read().overhead.bytes(class)).sum();
        let reg_frames = reg.counter_value(&format!("proto.send.{label}.frames"));
        let reg_bytes = reg.counter_value(&format!("proto.send.{label}.bytes"));
        assert_eq!(
            reg_frames, ledger_frames,
            "{label}: registry frames vs summed per-node ledgers"
        );
        assert_eq!(
            reg_bytes, ledger_bytes,
            "{label}: registry bytes vs summed per-node ledgers"
        );
    }
    // The overlay actually did something measurable, and the
    // heartbeat/measurement split is real: liveness pings to wired
    // neighbors land in the heartbeat class, candidate probes in the
    // measurement class, and neither is empty.
    assert!(reg.counter_value("proto.send.measurement.frames") > 0);
    assert!(reg.counter_value("proto.send.heartbeat.frames") > 0);
    assert!(reg.counter_value("proto.send.link_state.frames") > 0);
    assert_eq!(reg.counter_value("proto.decode_errors"), 0);
    // Joins landed in the convergence histogram — at most one per node
    // (a node that first wires at an epoch tick, rather than on the
    // ping fast-path, does not count as an observed join).
    let joins = reg.histogram_snapshot("proto.convergence.join_secs").count;
    assert!(
        joins >= 1 && joins <= views.len() as u64,
        "join observations out of range: {joins}"
    );
    // Received frames are a subset of sent ones (lossless net, but some
    // frames go to the bootstrap server, which is not an EgoistNode).
    for class in MessageClass::ALL {
        let label = class.label();
        assert!(
            reg.counter_value(&format!("proto.recv.{label}.frames"))
                <= reg.counter_value(&format!("proto.send.{label}.frames")),
            "{label}: more receives than sends"
        );
    }
}

fn traffic_cfg() -> egoist::traffic::engine::TrafficConfig {
    use egoist::core::policies::PolicyKind;
    use egoist::core::sim::Metric;
    let mut cfg = egoist::traffic::engine::TrafficConfig::new(
        16,
        3,
        PolicyKind::BestResponse,
        Metric::DelayPing,
        7,
    );
    cfg.sim.epochs = 6;
    cfg.sim.warmup_epochs = 2;
    cfg.flows_per_epoch = 24;
    cfg
}

#[test]
fn instrumentation_does_not_change_outputs() {
    let _g = serial();
    use egoist::traffic::engine::TrafficEngine;
    let cfg = traffic_cfg();

    egoist::obs::disable();
    let plain = TrafficEngine::run(&cfg).to_json();

    egoist::obs::registry().reset();
    egoist::obs::enable();
    egoist::obs::enable_trace();
    let instrumented = TrafficEngine::run(&cfg).to_json();
    egoist::obs::disable_trace();
    egoist::obs::disable();

    assert_eq!(
        plain, instrumented,
        "enabling obs must be invisible to simulation outputs"
    );
}

#[test]
fn obs_exports_are_deterministic_across_runs() {
    let _g = serial();
    use egoist::traffic::engine::TrafficEngine;
    let cfg = traffic_cfg();
    let reg = egoist::obs::registry();

    let deterministic_view = || {
        // Everything except span durations: counters, histogram
        // snapshots (bucket counts and fixed-point sums), span *counts*.
        let counters = reg.counters_sorted();
        let hists: Vec<_> = reg
            .histograms_sorted()
            .into_iter()
            .filter(|(name, _)| !name.starts_with("proto."))
            .collect();
        let span_counts: Vec<_> = reg
            .spans_sorted()
            .into_iter()
            .map(|(name, count, _ns)| (name, count))
            .collect();
        (counters, hists, span_counts)
    };

    egoist::obs::enable();
    reg.reset();
    TrafficEngine::run(&cfg);
    let first = deterministic_view();

    reg.reset();
    TrafficEngine::run(&cfg);
    let second = deterministic_view();
    egoist::obs::disable();

    assert_eq!(first, second, "obs exports must be seed-deterministic");
    let (counters, hists, _) = first;
    assert!(
        counters
            .iter()
            .any(|(name, v)| name == "core.solver.candidates_scanned" && *v > 0),
        "solver counters should have fired: {counters:?}"
    );
    assert!(
        hists
            .iter()
            .any(|(name, snap)| name == "traffic.flow_latency_ms" && snap.count > 0),
        "flow latency histogram should have observations"
    );
}
