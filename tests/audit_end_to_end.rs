//! §3.4 end to end: free riders inflate their announced out-link costs;
//! an auditor armed only with Vivaldi coordinate estimates (the passive
//! pyxida audit the paper sketches) identifies them — across the real
//! crates: netsim underlay → cheat model → coord estimates → audit.

use egoist::coord::CoordinateSystem;
use egoist::core::cheat::{audit, CheatConfig};
use egoist::graph::NodeId;
use egoist::netsim::DelayModel;

#[test]
fn vivaldi_audit_catches_inflating_free_riders() {
    let model = DelayModel::planetlab_50(17);
    let truth = model.base().clone();

    // Free riders announce 3x-inflated out-link costs.
    let cheat = CheatConfig {
        free_riders: vec![NodeId(5), NodeId(23), NodeId(40)],
        inflation: 3.0,
    };
    let announced = cheat.announced_matrix(&truth);

    // Independent estimator: a converged coordinate system.
    let mut coords = CoordinateSystem::new(50, 17);
    coords.converge(&truth, 60);

    let all: Vec<NodeId> = (0..50).map(NodeId).collect();
    let findings = audit(
        &announced,
        |a, b| coords.coord(a.index()).distance(&coords.coord(b.index())),
        &all,
        6,
        1.0, // tolerate up to 100% coordinate error; 3x inflation exceeds it
    );

    let flagged: Vec<NodeId> = findings
        .iter()
        .filter(|f| f.flagged)
        .map(|f| f.node)
        .collect();
    for liar in &cheat.free_riders {
        assert!(flagged.contains(liar), "liar {liar} escaped: {flagged:?}");
    }
    let false_positives = flagged
        .iter()
        .filter(|f| !cheat.free_riders.contains(f))
        .count();
    assert!(
        false_positives <= 5,
        "too many honest nodes flagged: {false_positives} ({flagged:?})"
    );
}

#[test]
fn honest_network_produces_no_flags_with_perfect_estimates() {
    let truth = DelayModel::planetlab_50(19).base().clone();
    let announced = CheatConfig::honest().announced_matrix(&truth);
    let all: Vec<NodeId> = (0..50).map(NodeId).collect();
    let findings = audit(&announced, |a, b| truth.get(a, b), &all, 6, 0.1);
    assert!(findings.iter().all(|f| !f.flagged));
}

#[test]
fn audit_sensitivity_grows_with_inflation() {
    // Mild lies hide inside coordinate error; blatant ones cannot.
    let truth = DelayModel::planetlab_50(21).base().clone();
    let mut coords = CoordinateSystem::new(50, 21);
    coords.converge(&truth, 60);
    let all: Vec<NodeId> = (0..50).map(NodeId).collect();

    let detection_rate = |inflation: f64| -> f64 {
        let cheat = CheatConfig {
            free_riders: (0..10u32).map(NodeId).collect(),
            inflation,
        };
        let announced = cheat.announced_matrix(&truth);
        let findings = audit(
            &announced,
            |a, b| coords.coord(a.index()).distance(&coords.coord(b.index())),
            &all,
            6,
            1.0,
        );
        findings
            .iter()
            .filter(|f| f.flagged && cheat.free_riders.contains(&f.node))
            .count() as f64
            / 10.0
    };

    let mild = detection_rate(1.2);
    let blatant = detection_rate(4.0);
    assert!(
        blatant > mild,
        "detection must grow with inflation: 1.2x → {mild}, 4x → {blatant}"
    );
    assert!(blatant >= 0.8, "4x inflation should be caught: {blatant}");
}
