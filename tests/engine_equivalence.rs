//! Golden equivalence: the epoch route-state engine must be a pure
//! optimization.
//!
//! [`EngineMode::Epoch`] (shared snapshots + incremental residual
//! repair) and [`EngineMode::Recompute`] (the straightforward per-turn
//! oracle) simulate the same process; these tests pin that the two
//! produce *bit-identical* outputs — every `EpochSample` series down to
//! the float bits, and the serialized `TrafficReport` byte for byte —
//! across metrics, scales, policies and churn. Any divergence means the
//! incremental repair returned a wrong distance, not merely a different
//! tie-break: policies only consume distances, and equal path minima are
//! equal `f64`s.

use egoist::core::cheat::CheatConfig;
use egoist::core::policies::PolicyKind;
use egoist::core::sim::{run, EngineMode, Metric, SimConfig, SimResult, Simulator};
use egoist::netsim::ChurnModel;
use egoist::traffic::demand::WorkloadKind;
use egoist::traffic::engine::{TrafficConfig, TrafficEngine};

fn cfg(n: usize, k: usize, policy: PolicyKind, metric: Metric, seed: u64) -> SimConfig {
    let mut c = SimConfig::baseline(k, policy, metric, seed);
    c.n = n;
    c.epochs = 6;
    c.warmup_epochs = 2;
    c
}

fn with_churn(mut c: SimConfig) -> SimConfig {
    let mut model = ChurnModel::planetlab_like(c.n, 4);
    model.timescale_divisor = 120.0;
    c.churn = Some(model.generate(c.epochs as f64 * c.epoch_secs));
    c
}

/// Run both engines and demand bitwise-equal sample series.
fn assert_equivalent(base: SimConfig) {
    let mut epoch_cfg = base.clone();
    epoch_cfg.engine = EngineMode::Epoch;
    let mut oracle_cfg = base;
    oracle_cfg.engine = EngineMode::Recompute;
    let fast = run(epoch_cfg.clone());
    let oracle = run(oracle_cfg);
    assert_series_identical(&fast, &oracle, &epoch_cfg);
}

fn assert_series_identical(fast: &SimResult, oracle: &SimResult, cfg: &SimConfig) {
    assert_eq!(fast.samples.len(), oracle.samples.len());
    for (f, o) in fast.samples.iter().zip(&oracle.samples) {
        let label = format!(
            "{:?}/{:?} n={} seed={} epoch {}",
            cfg.policy, cfg.metric, cfg.n, cfg.seed, f.epoch
        );
        assert_eq!(f.epoch, o.epoch, "{label}");
        assert_eq!(f.rewirings, o.rewirings, "{label}: rewirings");
        assert_eq!(f.alive, o.alive, "{label}: alive");
        for (name, a, b) in [
            ("individual_cost", &f.individual_cost, &o.individual_cost),
            ("efficiency", &f.efficiency, &o.efficiency),
            (
                "bandwidth_utility",
                &f.bandwidth_utility,
                &o.bandwidth_utility,
            ),
        ] {
            assert_eq!(a.len(), b.len(), "{label}: {name} length");
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: {name}[{i}] {x} vs {y}");
            }
        }
    }
}

#[test]
fn delay_metric_32_nodes_identical() {
    assert_equivalent(cfg(32, 4, PolicyKind::BestResponse, Metric::DelayPing, 3));
}

#[test]
fn delay_metric_64_nodes_identical() {
    assert_equivalent(cfg(64, 6, PolicyKind::BestResponse, Metric::DelayPing, 9));
}

#[test]
fn load_metric_identical() {
    assert_equivalent(cfg(32, 4, PolicyKind::BestResponse, Metric::Load, 5));
    assert_equivalent(cfg(64, 5, PolicyKind::BestResponse, Metric::Load, 6));
}

#[test]
fn bandwidth_metric_identical() {
    assert_equivalent(cfg(32, 4, PolicyKind::BestResponse, Metric::Bandwidth, 7));
    assert_equivalent(cfg(64, 5, PolicyKind::BestResponse, Metric::Bandwidth, 8));
}

#[test]
fn churned_runs_identical() {
    assert_equivalent(with_churn(cfg(
        32,
        4,
        PolicyKind::BestResponse,
        Metric::DelayPing,
        11,
    )));
    assert_equivalent(with_churn(cfg(
        64,
        5,
        PolicyKind::BestResponse,
        Metric::Load,
        13,
    )));
}

#[test]
fn fault_plan_churn_runs_identical() {
    // The adversarial fleet harness schedules faults as a `FaultPlan`;
    // `churn_trace` projects its membership effects (partition minority
    // OFF for the window, storm flaps as ON/OFF events) into the pure
    // simulator's `ChurnTrace`. The engines must stay bit-identical
    // under that projection too, so the fleet's chaos scenarios and the
    // figure pipeline share one notion of churn.
    use egoist::graph::NodeId;
    use egoist::netsim::FaultPlan;
    for (n, k, metric, seed) in [
        (32usize, 4, Metric::DelayPing, 37u64),
        (64, 5, Metric::Load, 41),
    ] {
        let mut c = cfg(n, k, PolicyKind::BestResponse, metric, seed);
        let horizon = c.epochs as f64 * c.epoch_secs;
        let minority: Vec<NodeId> = (3 * n / 4..n).map(NodeId::from_index).collect();
        let flappy: Vec<NodeId> = (0..n / 4).map(NodeId::from_index).collect();
        let plan = FaultPlan::new()
            .partition(0.35 * horizon, 0.6 * horizon, vec![vec![], minority])
            .churn_storm(0.65 * horizon, 0.9 * horizon, flappy, 0.08 * horizon, 0.4);
        let trace = plan.churn_trace(n, horizon);
        assert!(
            !trace.events.is_empty(),
            "fault plan projected an empty churn trace"
        );
        c.churn = Some(trace);
        assert_equivalent(c);
    }
}

#[test]
fn other_policies_identical() {
    for policy in [
        PolicyKind::EpsilonBestResponse { epsilon: 0.1 },
        PolicyKind::HybridBestResponse { k2: 2 },
        PolicyKind::Closest,
        PolicyKind::Random,
    ] {
        assert_equivalent(cfg(32, 4, policy, Metric::DelayPing, 17));
    }
}

#[test]
fn traffic_aware_wiring_identical() {
    // Without a demand feed the policy degenerates to plain BR, but the
    // dispatch still goes through the TrafficAware arms of both engines.
    assert_equivalent(cfg(
        32,
        4,
        PolicyKind::TrafficAware { bias: 0.8 },
        Metric::DelayPing,
        43,
    ));
}

#[test]
fn traffic_aware_closed_loop_report_identical() {
    // The real test: the traffic engine feeds an observed-demand EWMA
    // into the simulator every epoch, so the demand-blended preferences
    // actually differ from uniform — and both engine modes must consume
    // them identically, under every data-plane policy.
    use egoist::traffic::DataPolicyKind;
    let mut base = TrafficConfig::new(
        24,
        3,
        PolicyKind::TrafficAware { bias: 0.8 },
        Metric::DelayPing,
        47,
    );
    base.sim.epochs = 8;
    base.sim.warmup_epochs = 3;
    base.workload = WorkloadKind::Gravity { exponent: 1.2 };
    base.flows_per_epoch = 30;
    for data_policy in DataPolicyKind::all() {
        let mut b = base.clone();
        b.data_policy = data_policy;
        let mut fast = b.clone();
        fast.sim.engine = EngineMode::Epoch;
        let mut oracle = b;
        oracle.sim.engine = EngineMode::Recompute;
        assert_eq!(
            TrafficEngine::run(&fast).to_json(),
            TrafficEngine::run(&oracle).to_json(),
            "traffic-aware closed loop diverged under {data_policy:?}"
        );
    }
}

#[test]
fn free_rider_runs_identical() {
    let mut c = cfg(32, 4, PolicyKind::BestResponse, Metric::DelayPing, 19);
    c.cheat = CheatConfig::first_n(4, 2.0);
    assert_equivalent(c);
}

#[test]
fn traffic_report_json_identical() {
    for metric in [Metric::DelayPing, Metric::Load, Metric::Bandwidth] {
        let mut base = TrafficConfig::new(32, 4, PolicyKind::BestResponse, metric, 23);
        base.sim.epochs = 8;
        base.sim.warmup_epochs = 3;
        base.workload = WorkloadKind::Gravity { exponent: 1.2 };
        base.flows_per_epoch = 40;
        let mut fast = base.clone();
        fast.sim.engine = EngineMode::Epoch;
        let mut oracle = base;
        oracle.sim.engine = EngineMode::Recompute;
        assert_eq!(
            TrafficEngine::run(&fast).to_json(),
            TrafficEngine::run(&oracle).to_json(),
            "traffic report diverged on {metric:?}"
        );
    }
}

#[test]
fn traffic_report_json_identical_with_churn() {
    let mut base = TrafficConfig::new(32, 4, PolicyKind::BestResponse, Metric::Load, 29);
    base.sim.epochs = 8;
    base.sim.warmup_epochs = 3;
    let mut model = ChurnModel::planetlab_like(32, 4);
    model.timescale_divisor = 120.0;
    base.sim.churn = Some(model.generate(base.sim.epochs as f64 * base.sim.epoch_secs));
    let mut fast = base.clone();
    fast.sim.engine = EngineMode::Epoch;
    let mut oracle = base;
    oracle.sim.engine = EngineMode::Recompute;
    assert_eq!(
        TrafficEngine::run(&fast).to_json(),
        TrafficEngine::run(&oracle).to_json()
    );
}

#[test]
fn epoch_engine_actually_takes_the_incremental_paths() {
    // Not just equivalent — the engine must be doing the cheap thing:
    // copied residual rows and repaired rewirings dominate, and full
    // rebuilds stay at one per epoch state (underlay advance / churn).
    let c = cfg(32, 4, PolicyKind::BestResponse, Metric::DelayPing, 31);
    let mut sim = Simulator::new(c.clone());
    for epoch in 0..c.epochs {
        sim.run_epoch(epoch);
    }
    let stats = sim.route_stats();
    assert!(
        stats.rebuilds <= c.epochs + 1,
        "snapshot must survive whole epochs: {} rebuilds",
        stats.rebuilds
    );
    assert!(
        stats.residual_borrowed > stats.residual_swept,
        "most residual rows should be zero-copy borrows: {} borrowed vs {} swept",
        stats.residual_borrowed,
        stats.residual_swept
    );
    assert!(
        stats.rewire_repaired + stats.rewire_swept > 0,
        "re-wirings must flow through the incremental repair"
    );
}
