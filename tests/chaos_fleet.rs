//! Chaos-fleet acceptance suite: the adversarial harness must show the
//! faults biting *and* the protocol recovering.
//!
//! * Under 30% loss, a churn storm, and a healed two-way partition, the
//!   fleet reconverges to ≥95% route reachability within the horizon.
//! * A Sybil swarm running an eclipse lure ends with no attacker
//!   identity in any honest node's active view.
//! * A swarm forging only *third-party* links (invisible to the
//!   first-hand audit) ends with zero forged links in any honest
//!   routing graph and every lure origin banned by ≥90% of the fleet.
//! * Same seed + config ⇒ byte-identical robustness reports.
//!
//! The n=1000 scale scenario runs in the bench binary (`chaos_fleet
//! --quick`), not here — it needs a release build to finish quickly.

use egoist_proto::fleet::{
    run_fleet, storm_partition_profile, sybil_eclipse_profile, third_party_lure_profile,
};

#[test]
fn storm_partition_fleet_reconverges() {
    let cfg = storm_partition_profile(true);
    let r = run_fleet(&cfg);
    // The scheduled faults actually disturbed routing…
    assert!(
        r.min_reachability < 0.90,
        "faults never bit (min reachability {}): {:?}",
        r.min_reachability,
        r.timeline
    );
    assert!(r.fault.dropped > 0, "30% loss produced no drops?");
    assert!(r.fault.cut > 0, "partition/storm windows cut nothing?");
    // …and the fleet healed before the horizon.
    assert!(
        r.final_reachability >= 0.95,
        "fleet did not reconverge: final reachability {} timeline {:?}",
        r.final_reachability,
        r.timeline
    );
    for w in &r.windows {
        assert!(
            w.recovery_secs.is_some(),
            "window {:?} [{}, {}) never reconverged: {:?}",
            w.kind,
            w.from,
            w.to,
            r.timeline
        );
    }
}

#[test]
fn sybil_eclipse_is_defeated() {
    let cfg = sybil_eclipse_profile(true);
    let r = run_fleet(&cfg);
    assert_eq!(
        r.attacker_in_active_views, 0,
        "attacker identities survive in honest active views"
    );
    assert!(
        r.attacker_ban_pairs > 0,
        "peer scoring never banned any Sybil identity"
    );
    // The swarm was really constrained by its one endpoint budget.
    let a = r.adversary.expect("adversary stats in report");
    assert!(a.sent > 0, "swarm sent nothing");
    assert!(
        a.pongs > 0,
        "swarm answered no pings (the lure needs measurable identities)"
    );
    // Honest routing survives the attack.
    assert!(
        r.final_reachability >= 0.95,
        "attack degraded honest routing: {}",
        r.final_reachability
    );
}

#[test]
fn third_party_forgery_is_quarantined_and_banned() {
    let cfg = third_party_lure_profile(true);
    let r = run_fleet(&cfg);
    // The ranking engine actually fired on the forged claims…
    assert!(
        r.claims_contradicted > 0,
        "no third-party claim was ever contradicted"
    );
    assert!(
        r.links_quarantined > 0,
        "no forged link was ever quarantined from route computation"
    );
    // …and no forged link survives in any honest routing graph.
    assert_eq!(
        r.forged_links_in_routes, 0,
        "forged third-party links leaked into honest routing graphs"
    );
    // Repeatedly-contradicted origins end up banned fleet-wide.
    let frac = r.lure_ban_frac.expect("sybil scenario has a ban fraction");
    assert!(
        frac >= 0.9,
        "lure origins banned by only {:.0}% of honest nodes",
        frac * 100.0
    );
    assert_eq!(
        r.attacker_in_active_views, 0,
        "attacker identities survive in honest active views"
    );
    // Honest routing survives the attack.
    assert!(
        r.final_reachability >= 0.95,
        "attack degraded honest routing: {}",
        r.final_reachability
    );
}

#[test]
fn chaos_reports_are_byte_identical_across_runs() {
    let cfg = storm_partition_profile(true);
    let a = run_fleet(&cfg).to_json();
    let b = run_fleet(&cfg).to_json();
    assert_eq!(a, b, "same-seed chaos reports must be byte-identical");
}
