//! Chaos-fleet acceptance suite: the adversarial harness must show the
//! faults biting *and* the protocol recovering.
//!
//! * Under 30% loss, a churn storm, and a healed two-way partition, the
//!   fleet reconverges to ≥95% route reachability within the horizon.
//! * A Sybil swarm running an eclipse lure ends with no attacker
//!   identity in any honest node's active view.
//! * Same seed + config ⇒ byte-identical robustness reports.

use egoist_proto::fleet::{run_fleet, storm_partition_profile, sybil_eclipse_profile};

#[test]
fn storm_partition_fleet_reconverges() {
    let cfg = storm_partition_profile(true);
    let r = run_fleet(&cfg);
    // The scheduled faults actually disturbed routing…
    assert!(
        r.min_reachability < 0.90,
        "faults never bit (min reachability {}): {:?}",
        r.min_reachability,
        r.timeline
    );
    assert!(r.fault.dropped > 0, "30% loss produced no drops?");
    assert!(r.fault.cut > 0, "partition/storm windows cut nothing?");
    // …and the fleet healed before the horizon.
    assert!(
        r.final_reachability >= 0.95,
        "fleet did not reconverge: final reachability {} timeline {:?}",
        r.final_reachability,
        r.timeline
    );
    for w in &r.windows {
        assert!(
            w.recovery_secs.is_some(),
            "window {:?} [{}, {}) never reconverged: {:?}",
            w.kind,
            w.from,
            w.to,
            r.timeline
        );
    }
}

#[test]
fn sybil_eclipse_is_defeated() {
    let cfg = sybil_eclipse_profile(true);
    let r = run_fleet(&cfg);
    assert_eq!(
        r.attacker_in_active_views, 0,
        "attacker identities survive in honest active views"
    );
    assert!(
        r.attacker_ban_pairs > 0,
        "peer scoring never banned any Sybil identity"
    );
    // The swarm was really constrained by its one endpoint budget.
    let a = r.adversary.expect("adversary stats in report");
    assert!(a.sent > 0, "swarm sent nothing");
    assert!(
        a.pongs > 0,
        "swarm answered no pings (the lure needs measurable identities)"
    );
    // Honest routing survives the attack.
    assert!(
        r.final_reachability >= 0.95,
        "attack degraded honest routing: {}",
        r.final_reachability
    );
}

#[test]
fn chaos_reports_are_byte_identical_across_runs() {
    let cfg = storm_partition_profile(true);
    let a = run_fleet(&cfg).to_json();
    let b = run_fleet(&cfg).to_json();
    assert_eq!(a, b, "same-seed chaos reports must be byte-identical");
}
