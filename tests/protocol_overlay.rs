//! Cross-crate integration: the tokio protocol stack (egoist-proto) on a
//! netsim-backed SimTransport builds overlays whose quality matches the
//! pure simulator's — the protocol path and the simulation path agree.

use egoist::coord::CoordinateSystem;
use egoist::graph::apsp::apsp;
use egoist::graph::{DiGraph, DistanceMatrix, NodeId};
use egoist::netsim::fault::FaultConfig;
use egoist::netsim::DelayModel;
use egoist::proto::bootstrap::{BootstrapServer, Registry};
use egoist::proto::{EgoistNode, NodeConfig, NodeHandle, SimNet};
use std::time::Duration;

const BOOT: NodeId = NodeId(1000);

async fn spawn_overlay(
    n: usize,
    k: usize,
    delays: &DistanceMatrix,
    fault: FaultConfig,
) -> (SimNet, Vec<NodeHandle>) {
    let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                big.set_at(i, j, delays.at(i, j));
            }
        }
    }
    let net = SimNet::new(big, fault, 77);
    tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
    let mut handles = Vec::new();
    for i in 0..n {
        let mut cfg = NodeConfig::new(NodeId::from_index(i), n, k);
        cfg.epoch = Duration::from_secs(10);
        cfg.announce_interval = Duration::from_secs(3);
        cfg.ping_interval = Duration::from_secs(5);
        cfg.liveness_timeout = Duration::from_secs(12);
        cfg.bootstrap = Some(BOOT);
        handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
        tokio::time::sleep(Duration::from_millis(150)).await;
    }
    (net, handles)
}

/// Reconstruct the overlay graph from the nodes' own views.
fn overlay_graph(handles: &[NodeHandle], delays: &DistanceMatrix) -> DiGraph {
    let n = handles.len();
    let mut g = DiGraph::new(n);
    for (i, h) in handles.iter().enumerate() {
        for w in h.snapshot().wiring {
            if w.index() < n {
                g.add_edge(NodeId::from_index(i), w, delays.at(i, w.index()));
            }
        }
    }
    g
}

#[test]
fn protocol_overlay_beats_ring_topology() {
    tokio::runtime::block_on_paused(async {
        let n = 12;
        let model = DelayModel::from_spec(
            &egoist::netsim::PlanetLabSpec::paper_50(),
            &egoist::netsim::delay::DelayConfig::default(),
            3,
        );
        let delays = model
            .base()
            .submatrix(&(0..n as u32).map(NodeId).collect::<Vec<_>>());

        let (_net, handles) = spawn_overlay(n, 3, &delays, FaultConfig::default()).await;
        tokio::time::sleep(Duration::from_secs(70)).await;

        let g = overlay_graph(&handles, &delays);
        let dist = apsp(&g);
        // Compare with a unit ring of the same degree budget.
        let mut ring = DiGraph::new(n);
        for i in 0..n {
            for o in 1..=3usize {
                ring.add_edge(
                    NodeId::from_index(i),
                    NodeId::from_index((i + o) % n),
                    delays.at(i, (i + o) % n),
                );
            }
        }
        let ring_dist = apsp(&ring);
        let mean = |m: &DistanceMatrix| {
            let mut s = 0.0;
            let mut c = 0;
            for i in 0..n {
                for j in 0..n {
                    if i != j && m.at(i, j).is_finite() {
                        s += m.at(i, j);
                        c += 1;
                    }
                }
            }
            s / c as f64
        };
        let (br_cost, ring_cost) = (mean(&dist), mean(&ring_dist));
        assert!(
            br_cost < ring_cost,
            "protocol BR overlay {br_cost:.1} must beat the circulant {ring_cost:.1}"
        );
        for h in handles {
            h.stop().await;
        }
    });
}

#[test]
fn protocol_overlay_is_fully_routable_under_loss() {
    tokio::runtime::block_on_paused(async {
        let n = 8;
        let delays = DistanceMatrix::from_fn(n, |i, j| 4.0 + ((i * 5 + j * 3) % 11) as f64);
        let (_net, handles) = spawn_overlay(n, 3, &delays, FaultConfig::lossy(0.10)).await;
        tokio::time::sleep(Duration::from_secs(90)).await;

        let mut routable = 0;
        for (i, h) in handles.iter().enumerate() {
            let v = h.snapshot();
            routable += (0..n)
                .filter(|&j| j != i && v.next_hops[j].is_some())
                .count();
        }
        let total = n * (n - 1);
        assert!(
            routable as f64 >= 0.9 * total as f64,
            "only {routable}/{total} routes under 10% loss"
        );
        for h in handles {
            h.stop().await;
        }
    });
}

#[test]
fn node_estimates_agree_with_vivaldi_predictions() {
    tokio::runtime::block_on_paused(async {
        // The protocol's ping estimates and an independently converged
        // coordinate system should broadly agree on the same underlay — the
        // property that makes the paper's pyxida audit (§3.4) possible.
        let n = 8;
        let model = DelayModel::from_spec(
            &egoist::netsim::PlanetLabSpec::uniform(egoist::netsim::Region::Europe, n),
            &egoist::netsim::delay::DelayConfig::default(),
            9,
        );
        let delays = model.base().clone();
        let (_net, handles) = spawn_overlay(n, 3, &delays, FaultConfig::default()).await;
        tokio::time::sleep(Duration::from_secs(60)).await;

        let mut cs = CoordinateSystem::new(n, 9);
        cs.converge(&delays, 40);

        let v0 = handles[0].snapshot();
        let predicted = cs.query_all(0);
        let mut compared = 0;
        for (j, &measured) in v0.direct_est.iter().enumerate().skip(1) {
            if measured.is_finite() {
                let truth = 0.5 * (delays.at(0, j) + delays.at(j, 0));
                assert!(
                    (measured - truth).abs() / truth < 0.25,
                    "ping estimate for v{j}: {measured:.1} vs truth {truth:.1}"
                );
                // Vivaldi is allowed to be sloppier, but must be same order.
                assert!(
                    predicted[j] / truth < 4.0 && truth / predicted[j].max(1e-9) < 4.0,
                    "vivaldi estimate for v{j}: {:.1} vs truth {truth:.1}",
                    predicted[j]
                );
                compared += 1;
            }
        }
        assert!(compared >= n / 2, "too few measured peers: {compared}");
        for h in handles {
            h.stop().await;
        }
    });
}
