//! Cross-crate integration for §5 (sampling) and §6 (applications):
//! the scalability mechanisms and the multipath analyses hold on
//! realistic underlays.

use egoist::core::cost::{disconnection_penalty, Preferences};
use egoist::core::game::Game;
use egoist::core::multipath::{
    analyze_pair, average_gains, bandwidth_overlay, disjoint_path_counts,
};
use egoist::core::policies::best_response::BrInstance;
use egoist::core::policies::{PolicyKind, WiringContext};
use egoist::core::sampling::{random_sample, topology_biased_sample};
use egoist::core::stats;
use egoist::graph::apsp::apsp;
use egoist::graph::NodeId;
use egoist::netsim::rng::derive;
use egoist::netsim::{BandwidthModel, DelayModel};

/// §5: BR over a biased sample stays close to full-knowledge BR, and
/// sampled BR beats sampled heuristics (the Figs. 5–8 ordering), at
/// reduced scale.
#[test]
fn sampled_br_stays_close_to_full_br() {
    let n = 60usize;
    let k = 3usize;
    let d = DelayModel::from_spec(
        &egoist::netsim::PlanetLabSpec::uniform(egoist::netsim::Region::NorthAmerica, n),
        &egoist::netsim::delay::DelayConfig::default(),
        1,
    )
    .base()
    .clone();
    // Build a BR overlay over nodes 0..n-2; newcomer is the last id.
    let existing_n = d.len() - 1;
    let mut game = Game::new(d.clone(), k, PolicyKind::BestResponse, 1);
    game.alive[existing_n] = false;
    game.incremental_build(existing_n);
    let g = game.graph();
    let dist = apsp(&g);
    let newcomer = NodeId::from_index(existing_n);
    let existing: Vec<NodeId> = (0..existing_n).map(NodeId::from_index).collect();
    let penalty = disconnection_penalty(&d);
    let prefs = Preferences::uniform(d.len());
    let alive = game.alive.clone();

    let direct: Vec<f64> = d.row(newcomer.index()).to_vec();
    let solve = |candidates: &[NodeId]| -> Vec<NodeId> {
        let ctx = WiringContext {
            node: newcomer,
            k,
            candidates,
            direct: &direct,
            residual: egoist::core::ResidualView::dense(&dist),
            prefs: &prefs,
            alive: &alive,
            penalty,
            current: &[],
        };
        let inst = BrInstance::build(&ctx);
        let init = inst.greedy(k, &[]);
        let (s, _) = inst.local_search(k, init, &[], 64);
        inst.to_nodes(&s)
    };
    let realized = |w: &[NodeId]| -> f64 {
        let mut total = 0.0;
        for &j in &existing {
            let mut best = penalty;
            for &hop in w {
                let tail = if hop == j { 0.0 } else { dist.get(hop, j) };
                if tail.is_finite() {
                    best = best.min(d.get(newcomer, hop) + tail);
                }
            }
            total += best;
        }
        total / existing.len() as f64
    };

    let c_full = realized(&solve(&existing));
    let mut rng = derive(5, "sample-test");
    let mut sampled_costs = Vec::new();
    let mut biased_costs = Vec::new();
    for _ in 0..8 {
        let sample = random_sample(&existing, 12, &mut rng);
        sampled_costs.push(realized(&solve(&sample)));
        let biased = topology_biased_sample(&existing, 12, 36, 2, &g, &direct, &mut rng);
        biased_costs.push(realized(&solve(&biased)));
    }
    let mean_sampled = stats::mean(&sampled_costs);
    let mean_biased = stats::mean(&biased_costs);
    // Sampling at m/n = 20% keeps the newcomer within 2x of full BR.
    assert!(
        mean_sampled < 2.0 * c_full,
        "random-sampled BR {mean_sampled:.1} vs full {c_full:.1}"
    );
    assert!(
        mean_biased < 2.0 * c_full,
        "biased-sampled BR {mean_biased:.1} vs full {c_full:.1}"
    );
}

/// §6.1: multipath transfer gains grow with k and the max-flow bound
/// dominates the parallel-sessions gain.
#[test]
fn multipath_gains_grow_with_k() {
    let n = 20;
    let bw = BandwidthModel::with_defaults(n, 3);
    let members: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let mut prev = 0.0;
    for k in [2usize, 4, 6] {
        let overlay = bandwidth_overlay(&bw, k, 2);
        let (parallel, bound) = average_gains(&overlay, &bw, &members);
        let p = stats::mean(&parallel);
        let b = stats::mean(&bound);
        assert!(b >= p - 1e-9, "bound {b:.2} must dominate parallel {p:.2}");
        assert!(
            p >= prev * 0.9,
            "gain should not collapse as k grows: k={k}, {p:.2} vs prev {prev:.2}"
        );
        prev = p;
    }
}

/// §6.2: disjoint-path counts are bounded by k and grow with it.
#[test]
fn disjoint_paths_track_k() {
    let d = DelayModel::planetlab_50(5)
        .base()
        .submatrix(&(0..20).map(NodeId).collect::<Vec<_>>());
    let members: Vec<NodeId> = (0..20).map(NodeId).collect();
    let mut prev = 0.0;
    for k in [2usize, 4, 6] {
        let mut game = Game::new(d.clone(), k, PolicyKind::BestResponse, 5);
        game.run_to_convergence(6);
        let counts = disjoint_path_counts(&game.graph(), &members);
        let mean = stats::mean(&counts);
        assert!(counts.iter().all(|&c| c <= k as f64 + 1e-9));
        assert!(mean > prev, "disjoint paths must grow with k: {mean:.2}");
        prev = mean;
    }
}

/// The per-pair multipath analysis is internally consistent on a
/// BR-wired overlay.
#[test]
fn multipath_pair_analysis_consistency() {
    let bw = BandwidthModel::with_defaults(16, 9);
    let overlay = bandwidth_overlay(&bw, 4, 2);
    for s in 0..4u32 {
        for t in 8..12u32 {
            let r = analyze_pair(&overlay, &bw, NodeId(s), NodeId(t));
            assert!(r.direct > 0.0);
            assert!(r.parallel >= r.direct - 1e-9);
            assert!(r.max_flow_bound >= r.parallel - 1e-9);
            assert!(r.parallel_gain() >= 1.0 - 1e-9);
        }
    }
}
