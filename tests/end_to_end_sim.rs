//! Cross-crate integration: the epoch simulator reproduces the paper's
//! headline orderings end to end (netsim underlay → core policies →
//! routing evaluation). These are the Fig. 1/2/3/4 claims at reduced
//! scale, each one exercising the full stack.

use egoist::core::cheat::CheatConfig;
use egoist::core::policies::PolicyKind;
use egoist::core::sim::{full_mesh_reference, run, Metric, SimConfig};
use egoist::graph::NodeId;
use egoist::netsim::ChurnModel;

fn cfg(k: usize, policy: PolicyKind, metric: Metric, seed: u64) -> SimConfig {
    let mut c = SimConfig::baseline(k, policy, metric, seed);
    c.n = 30;
    c.epochs = 12;
    c.warmup_epochs = 4;
    c
}

/// Fig. 1 (delay): BR beats every heuristic, full mesh lower-bounds BR.
#[test]
fn figure1_delay_ordering() {
    let base = cfg(3, PolicyKind::BestResponse, Metric::DelayPing, 5);
    let br = run(base.clone()).mean_individual_cost(4);
    let mesh = full_mesh_reference(&base);
    assert!(
        mesh <= br * 1.02,
        "mesh {mesh:.1} must lower-bound BR {br:.1}"
    );

    for policy in [PolicyKind::Random, PolicyKind::Regular, PolicyKind::Closest] {
        let mut c = base.clone();
        c.policy = policy;
        let cost = run(c).mean_individual_cost(4);
        assert!(
            cost > br,
            "{policy:?} ({cost:.1}) must lose to BR ({br:.1})"
        );
    }
}

/// Fig. 1 (bandwidth): BR maximizes aggregate bottleneck bandwidth.
#[test]
fn figure1_bandwidth_ordering() {
    let base = cfg(3, PolicyKind::BestResponse, Metric::Bandwidth, 7);
    let br = run(base.clone()).mean_bandwidth_utility(4);
    for policy in [PolicyKind::Random, PolicyKind::Regular, PolicyKind::Closest] {
        let mut c = base.clone();
        c.policy = policy;
        let bw = run(c).mean_bandwidth_utility(4);
        assert!(
            bw < br * 1.001,
            "{policy:?} bandwidth {bw:.1} must not beat BR {br:.1}"
        );
    }
}

/// Fig. 2 (right): at extreme churn, HybridBR's donated backbone keeps
/// efficiency above vanilla BR.
#[test]
fn figure2_hybrid_wins_under_extreme_churn() {
    let mut model = ChurnModel::planetlab_like(30, 3);
    model.timescale_divisor = 600.0;
    let trace = model.generate(12.0 * 60.0);

    let mut br = cfg(5, PolicyKind::BestResponse, Metric::DelayPing, 3);
    br.churn = Some(trace.clone());
    let e_br = run(br).mean_efficiency(4);

    let mut hy = cfg(
        5,
        PolicyKind::HybridBestResponse { k2: 2 },
        Metric::DelayPing,
        3,
    );
    hy.churn = Some(trace);
    let e_hy = run(hy).mean_efficiency(4);

    assert!(
        e_hy > e_br * 0.95,
        "HybridBR efficiency {e_hy:.4} should at least match BR {e_br:.4} at high churn"
    );
}

/// Fig. 3: BR(ε) re-wires an order of magnitude less than BR at nearly
/// the same cost.
#[test]
fn figure3_epsilon_cuts_rewiring() {
    let br = run(cfg(4, PolicyKind::BestResponse, Metric::DelayPing, 9));
    let eps = run(cfg(
        4,
        PolicyKind::EpsilonBestResponse { epsilon: 0.1 },
        Metric::DelayPing,
        9,
    ));
    let (r_br, r_eps) = (br.mean_rewirings(4), eps.mean_rewirings(4));
    assert!(
        r_eps < r_br * 0.5,
        "BR(0.1) re-wirings {r_eps:.1} should be well below BR {r_br:.1}"
    );
    let (c_br, c_eps) = (br.mean_individual_cost(4), eps.mean_individual_cost(4));
    assert!(
        c_eps < c_br * 1.35,
        "BR(0.1) cost {c_eps:.1} must stay near BR {c_br:.1}"
    );
}

/// Fig. 4: a single 2x-inflating free rider moves nobody's cost much.
#[test]
fn figure4_free_rider_is_harmless() {
    let honest = run(cfg(2, PolicyKind::BestResponse, Metric::DelayPing, 11));
    let mut cheat = cfg(2, PolicyKind::BestResponse, Metric::DelayPing, 11);
    cheat.cheat = CheatConfig::single(NodeId(0));
    let cheating = run(cheat);
    let (h, c) = (
        honest.mean_individual_cost(4),
        cheating.mean_individual_cost(4),
    );
    assert!(
        (c / h - 1.0).abs() < 0.3,
        "free rider impact must be bounded: honest {h:.1} vs cheating {c:.1}"
    );
}

/// Determinism across the whole stack: same seed, same result.
#[test]
fn simulation_is_deterministic() {
    let a = run(cfg(3, PolicyKind::BestResponse, Metric::DelayPing, 21));
    let b = run(cfg(3, PolicyKind::BestResponse, Metric::DelayPing, 21));
    assert_eq!(
        a.mean_individual_cost(4).to_bits(),
        b.mean_individual_cost(4).to_bits()
    );
    assert_eq!(a.rewirings_series(), b.rewirings_series());
}

/// Different metrics produce genuinely different wiring incentives:
/// the bandwidth-optimal overlay is not the delay-optimal overlay.
#[test]
fn metrics_shape_the_overlay_differently() {
    let delay = run(cfg(3, PolicyKind::BestResponse, Metric::DelayPing, 13));
    let load = run(cfg(3, PolicyKind::BestResponse, Metric::Load, 13));
    // Costs are in different units; the point is both runs complete and
    // report sane, positive values.
    assert!(delay.mean_individual_cost(4) > 0.0);
    assert!(load.mean_individual_cost(4) > 0.0);
}
