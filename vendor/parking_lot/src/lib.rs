//! Offline mini-`parking_lot`.
//!
//! Thin non-poisoning wrappers over `std::sync` with `parking_lot`'s
//! ergonomic API (`lock()` / `read()` / `write()` return guards directly).
//! A poisoned std lock means a thread panicked while holding it; matching
//! parking_lot semantics, we simply continue with the inner data.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock (non-poisoning facade).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock (non-poisoning facade).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicked holder");
    }
}
