//! Offline mini-`criterion`.
//!
//! A wall-clock micro-benchmark harness exposing the criterion API shape
//! this workspace's benches use (`criterion_group!`, `criterion_main!`,
//! `bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`). No statistics beyond
//! median-of-samples; results print as one line per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 12 }
    }
}

/// Benchmark identifier: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples of adaptively-chosen
    /// batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate batch size to ~2 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn report(label: &str, median: Duration, throughput: Option<Throughput>) {
    let extra = match throughput {
        Some(Throughput::Bytes(b)) if median > Duration::ZERO => {
            let mbps = b as f64 / median.as_secs_f64() / 1e6;
            format!("  ({mbps:.1} MB/s)")
        }
        Some(Throughput::Elements(e)) if median > Duration::ZERO => {
            let eps = e as f64 / median.as_secs_f64();
            format!("  ({eps:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {median:>12.2?}{extra}");
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, b.median(), None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId2>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.into().0);
        report(&label, b.median(), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id.label);
        report(&label, b.median(), self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Coercion helper so `bench_function` accepts both `&str` and
/// [`BenchmarkId`].
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        BenchmarkId2(s.to_string())
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkId2(id.label)
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("x", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }
}
