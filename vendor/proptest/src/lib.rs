//! Offline mini-`proptest`.
//!
//! Deterministic generation-only property testing with the subset of the
//! proptest API this workspace uses: range/tuple/vec strategies,
//! `prop_map` / `prop_flat_map`, `any::<T>()`, the `proptest!` macro and
//! `prop_assert*`. Failing cases are reported with their case number and
//! the test's deterministic seed; there is **no shrinking** — rerun with
//! the printed case to debug.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic per-test, per-case generator.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait ArbitraryValue: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_uniform {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

arb_uniform!(u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random::<u64>() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    use super::*;

    /// Sizes accepted by [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.random_range(self.clone())
            }
        }
    }

    /// Strategy for vectors of `elem` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector strategy constructor.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a property; failure aborts only the current case's
/// closure via `return Err(..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Define property tests: each function body runs for `cases` generated
/// inputs with a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = <$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20, "sum {pair}");
        }

        #[test]
        fn flat_map_scales(n in (2usize..6).prop_flat_map(|n| collection::vec(0u32..10, n..n + 1))) {
            prop_assert!(n.len() >= 2 && n.len() < 6);
            prop_assert_eq!(n.len(), n.len());
        }

        #[test]
        fn early_return_ok_works(x in 0u32..10) {
            if x > 100 { return Ok(()); }
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_given_name_and_case() {
        use crate::Strategy;
        let s = 0u64..1000;
        let a = s.generate(&mut crate::test_rng("t", 3));
        let b = s.generate(&mut crate::test_rng("t", 3));
        assert_eq!(a, b);
    }
}
