//! Virtual-clock-aware time utilities.

use crate::runtime;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

/// A measurement of the runtime clock (virtual when paused). Nanoseconds
/// since the current runtime's epoch (or a process-wide epoch outside a
/// runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    nanos: u64,
}

fn clock_nanos() -> u64 {
    runtime::with_current(|e| e.now_nanos()).unwrap_or_else(|| {
        runtime::global_epoch()
            .elapsed()
            .as_nanos()
            .min(u64::MAX as u128) as u64
    })
}

impl Instant {
    pub fn now() -> Instant {
        Instant {
            nanos: clock_nanos(),
        }
    }

    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(clock_nanos().saturating_sub(self.nanos))
    }

    pub fn duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        let extra = u64::try_from(d.as_nanos()).ok()?;
        self.nanos.checked_add(extra).map(|nanos| Instant { nanos })
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, d: Duration) -> Instant {
        self.checked_add(d).expect("instant overflow")
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;

    fn sub(self, other: Instant) -> Duration {
        self.duration_since(other)
    }
}

/// Freeze the current runtime's clock (subsequent time only advances via
/// auto-advance when all tasks are idle).
pub fn pause() {
    runtime::expect_current("tokio::time::pause", |e| e.pause());
}

/// Future that completes at `deadline`.
pub struct Sleep {
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if clock_nanos() >= self.deadline.nanos {
            return Poll::Ready(());
        }
        runtime::expect_current("tokio::time::sleep", |e| {
            e.register_timer(self.deadline.nanos, cx.waker().clone());
        });
        Poll::Pending
    }
}

/// Sleep for `d`.
pub fn sleep(d: Duration) -> Sleep {
    sleep_until(Instant::now() + d)
}

/// Sleep until `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

pub mod error {
    /// The deadline of a [`super::timeout`] elapsed first.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Elapsed;

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}
}

pub use error::Elapsed;

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    fut: Pin<Box<F>>,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match Pin::new(&mut self.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Await `fut` for at most `d`.
pub fn timeout<F: Future>(d: Duration, fut: F) -> Timeout<F> {
    Timeout {
        fut: Box::pin(fut),
        sleep: sleep(d),
    }
}

/// What a lagging [`Interval`] does about missed ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MissedTickBehavior {
    /// Fire all missed ticks back to back.
    #[default]
    Burst,
    /// Skip missed ticks; next tick on the next period boundary.
    Skip,
    /// Forget the schedule; next tick one full period from now.
    Delay,
}

/// Periodic timer.
pub struct Interval {
    next: Instant,
    period: Duration,
    behavior: MissedTickBehavior,
}

impl Interval {
    pub fn set_missed_tick_behavior(&mut self, behavior: MissedTickBehavior) {
        self.behavior = behavior;
    }

    pub fn period(&self) -> Duration {
        self.period
    }

    /// Complete at the next scheduled tick. Cancel-safe: dropping the
    /// returned future does not consume the tick.
    pub async fn tick(&mut self) -> Instant {
        let fired = self.next;
        sleep_until(fired).await;
        let now = Instant::now();
        self.next = match self.behavior {
            MissedTickBehavior::Burst => fired + self.period,
            MissedTickBehavior::Delay => now + self.period,
            MissedTickBehavior::Skip => {
                let mut next = fired + self.period;
                while next <= now {
                    next = next + self.period;
                }
                next
            }
        };
        fired
    }
}

/// An interval first firing at `start`, then every `period`.
pub fn interval_at(start: Instant, period: Duration) -> Interval {
    assert!(period > Duration::ZERO, "interval period must be non-zero");
    Interval {
        next: start,
        period,
        behavior: MissedTickBehavior::Burst,
    }
}

/// An interval firing immediately, then every `period`.
pub fn interval(period: Duration) -> Interval {
    interval_at(Instant::now(), period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on_paused;

    #[test]
    fn timeout_err_when_inner_never_completes() {
        let r = block_on_paused(async {
            timeout(Duration::from_secs(5), std::future::pending::<()>()).await
        });
        assert_eq!(r, Err(Elapsed));
    }

    #[test]
    fn timeout_ok_when_inner_wins() {
        let r = block_on_paused(async {
            timeout(Duration::from_secs(5), async {
                sleep(Duration::from_secs(1)).await;
                9u8
            })
            .await
        });
        assert_eq!(r, Ok(9));
    }

    #[test]
    fn interval_ticks_on_schedule() {
        block_on_paused(async {
            let t0 = Instant::now();
            let mut iv = interval_at(t0 + Duration::from_secs(2), Duration::from_secs(10));
            iv.set_missed_tick_behavior(MissedTickBehavior::Skip);
            iv.tick().await;
            assert_eq!(t0.elapsed(), Duration::from_secs(2));
            iv.tick().await;
            assert_eq!(t0.elapsed(), Duration::from_secs(12));
        });
    }

    #[test]
    fn instants_order_and_subtract() {
        block_on_paused(async {
            let a = Instant::now();
            sleep(Duration::from_millis(5)).await;
            let b = Instant::now();
            assert!(b > a);
            assert_eq!(b - a, Duration::from_millis(5));
        });
    }
}
