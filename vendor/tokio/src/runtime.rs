//! The single-threaded executor and its clock.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

/// The deduplicated ready queue: at most one outstanding wake per task.
/// Without the dedup, N duplicate timer entries waking a task N times
/// would poll it N times, each pending poll registering fresh timer
/// entries — exponential growth.
#[derive(Default)]
struct ReadyQueue {
    order: VecDeque<usize>,
    queued: std::collections::HashSet<usize>,
}

/// State shared with wakers (which may fire from blocking threads).
pub(crate) struct Shared {
    ready: Mutex<ReadyQueue>,
    driver: std::thread::Thread,
    /// Number of `spawn_blocking` tasks still running; while > 0 the
    /// paused clock must not auto-advance.
    pub(crate) blocking_inflight: AtomicUsize,
    /// Set by any wake to cut idle parking short.
    stirred: AtomicBool,
}

impl Shared {
    pub(crate) fn notify(&self, task: usize) {
        {
            let mut q = self.ready.lock().unwrap();
            if q.queued.insert(task) {
                q.order.push_back(task);
            }
        }
        self.stirred.store(true, Ordering::SeqCst);
        self.driver.unpark();
    }
}

struct TaskWaker {
    id: usize,
    shared: Arc<Shared>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.shared.notify(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.notify(self.id);
    }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

pub(crate) struct TimerEntry {
    pub(crate) deadline_nanos: u64,
    seq: u64,
    pub(crate) waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline_nanos == other.deadline_nanos && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .deadline_nanos
            .cmp(&self.deadline_nanos)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The executor: a slab of tasks, a timer heap, an I/O waiter list and a
/// (possibly virtual) clock.
pub(crate) struct Executor {
    pub(crate) shared: Arc<Shared>,
    tasks: RefCell<Vec<Option<TaskFuture>>>,
    free_slots: RefCell<Vec<usize>>,
    timers: RefCell<std::collections::BinaryHeap<TimerEntry>>,
    timer_seq: std::cell::Cell<u64>,
    io_wakers: RefCell<Vec<Waker>>,
    /// Virtual-nanoseconds now when paused; offset origin when real.
    paused: std::cell::Cell<bool>,
    now_nanos: std::cell::Cell<u64>,
    real_epoch: std::time::Instant,
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<Executor>>> = const { RefCell::new(None) };
}

/// Process-wide epoch for `Instant::now()` outside any runtime.
static GLOBAL_EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

pub(crate) fn global_epoch() -> std::time::Instant {
    *GLOBAL_EPOCH.get_or_init(std::time::Instant::now)
}

impl Executor {
    fn new(paused: bool) -> Rc<Self> {
        Rc::new(Executor {
            shared: Arc::new(Shared {
                ready: Mutex::new(ReadyQueue::default()),
                driver: std::thread::current(),
                blocking_inflight: AtomicUsize::new(0),
                stirred: AtomicBool::new(false),
            }),
            tasks: RefCell::new(Vec::new()),
            free_slots: RefCell::new(Vec::new()),
            timers: RefCell::new(std::collections::BinaryHeap::new()),
            timer_seq: std::cell::Cell::new(0),
            io_wakers: RefCell::new(Vec::new()),
            paused: std::cell::Cell::new(paused),
            now_nanos: std::cell::Cell::new(0),
            real_epoch: std::time::Instant::now(),
        })
    }

    /// Current time in nanoseconds since this runtime's epoch.
    pub(crate) fn now_nanos(&self) -> u64 {
        if self.paused.get() {
            self.now_nanos.get()
        } else {
            self.real_epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
        }
    }

    pub(crate) fn pause(&self) {
        if !self.paused.get() {
            let now = self.real_epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.now_nanos.set(now);
            self.paused.set(true);
        }
    }

    pub(crate) fn register_timer(&self, deadline_nanos: u64, waker: Waker) {
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        self.timers.borrow_mut().push(TimerEntry {
            deadline_nanos,
            seq,
            waker,
        });
    }

    pub(crate) fn register_io(&self, waker: Waker) {
        self.io_wakers.borrow_mut().push(waker);
    }

    pub(crate) fn spawn_task(&self, fut: TaskFuture) {
        let id = {
            let mut tasks = self.tasks.borrow_mut();
            match self.free_slots.borrow_mut().pop() {
                Some(id) => {
                    tasks[id] = Some(fut);
                    id
                }
                None => {
                    tasks.push(Some(fut));
                    tasks.len() - 1
                }
            }
        };
        self.shared.notify(id);
    }

    fn poll_task(&self, id: usize) {
        let fut = {
            let mut tasks = self.tasks.borrow_mut();
            match tasks.get_mut(id) {
                Some(slot) => slot.take(),
                None => None,
            }
        };
        let Some(mut fut) = fut else { return };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            shared: Arc::clone(&self.shared),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                // Task done: recycle the slot. A stale waker may still
                // name this id later; the resulting poll is a legal
                // spurious wake for whichever task reuses the slot.
                self.free_slots.borrow_mut().push(id);
            }
            Poll::Pending => {
                self.tasks.borrow_mut()[id] = Some(fut);
            }
        }
    }

    /// Wake every timer whose deadline has passed. Returns whether any
    /// fired.
    fn fire_due_timers(&self) -> bool {
        let now = self.now_nanos();
        let mut fired = false;
        let mut timers = self.timers.borrow_mut();
        while let Some(head) = timers.peek() {
            if head.deadline_nanos <= now {
                let entry = timers.pop().expect("peeked");
                entry.waker.wake();
                fired = true;
            } else {
                break;
            }
        }
        fired
    }

    fn earliest_timer(&self) -> Option<u64> {
        self.timers.borrow().peek().map(|e| e.deadline_nanos)
    }

    fn wake_io_waiters(&self) -> bool {
        let wakers: Vec<Waker> = self.io_wakers.borrow_mut().drain(..).collect();
        let any = !wakers.is_empty();
        for w in wakers {
            w.wake();
        }
        any
    }

    fn has_ready(&self) -> bool {
        !self.shared.ready.lock().unwrap().order.is_empty()
    }

    fn pop_ready(&self) -> Option<usize> {
        let mut q = self.shared.ready.lock().unwrap();
        let id = q.order.pop_front()?;
        // Un-mark before the poll so wakes arriving *during* the poll
        // re-queue the task instead of being lost.
        q.queued.remove(&id);
        Some(id)
    }
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Executor) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|e| f(e)))
}

pub(crate) fn expect_current<R>(what: &str, f: impl FnOnce(&Executor) -> R) -> R {
    with_current(f).unwrap_or_else(|| panic!("{what} requires a running mini-tokio runtime"))
}

struct EnterGuard;

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Ready-queue id of the root future (which lives on `run`'s stack, so
/// it may borrow the caller's locals — no `'static` requirement).
const ROOT: usize = usize::MAX - 1;

fn run<F: Future>(fut: F, paused: bool) -> F::Output {
    CURRENT.with(|c| {
        assert!(
            c.borrow().is_none(),
            "nested mini-tokio runtimes are not supported"
        );
    });
    let exec = Executor::new(paused);
    CURRENT.with(|c| *c.borrow_mut() = Some(Rc::clone(&exec)));
    let _guard = EnterGuard;

    let mut fut = std::pin::pin!(fut);
    let root_waker = Waker::from(Arc::new(TaskWaker {
        id: ROOT,
        shared: Arc::clone(&exec.shared),
    }));
    exec.shared.notify(ROOT);

    loop {
        // 1. Drain the ready queue.
        while let Some(id) = exec.pop_ready() {
            if id == ROOT {
                let mut cx = Context::from_waker(&root_waker);
                if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
                    return out;
                }
            } else {
                exec.poll_task(id);
            }
        }

        // 2. Fire timers that are already due.
        if exec.fire_due_timers() {
            continue;
        }

        // 3. Idle. Blocking work pins the clock: wait for it.
        if exec.shared.blocking_inflight.load(Ordering::SeqCst) > 0 {
            std::thread::park_timeout(Duration::from_micros(100));
            continue;
        }

        // 4. I/O waiters: re-poll their sockets at millisecond cadence.
        let had_io = exec.wake_io_waiters();
        if had_io {
            if !exec.has_ready() {
                std::thread::park_timeout(Duration::from_millis(1));
            }
            continue;
        }

        // 5. Pure timer wait.
        match exec.earliest_timer() {
            Some(deadline) => {
                if exec.paused.get() {
                    // Virtual time: jump straight to the deadline.
                    exec.now_nanos.set(deadline.max(exec.now_nanos.get()));
                } else {
                    let now = exec.now_nanos();
                    if deadline > now {
                        exec.shared.stirred.store(false, Ordering::SeqCst);
                        std::thread::park_timeout(Duration::from_nanos(deadline - now));
                    }
                }
            }
            None => {
                if exec.has_ready() {
                    continue;
                }
                panic!(
                    "mini-tokio deadlock: the root task is pending but no task is \
                     runnable, no timer is armed, no I/O is pending and no blocking \
                     task is in flight"
                );
            }
        }
    }
}

/// Run a future to completion on a fresh runtime with the real clock.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    run(fut, false)
}

/// Run a future to completion with the clock paused from the start —
/// virtual time auto-advances to the next timer whenever all tasks idle
/// (the `#[tokio::test(start_paused = true)]` semantics).
pub fn block_on_paused<F: Future>(fut: F) -> F::Output {
    run(fut, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn paused_time_jumps_over_long_sleeps() {
        let wall = std::time::Instant::now();
        block_on_paused(async {
            crate::time::sleep(Duration::from_secs(3600)).await;
        });
        assert!(
            wall.elapsed() < Duration::from_secs(2),
            "virtual hour took {:?} real time",
            wall.elapsed()
        );
    }

    #[test]
    fn spawned_tasks_run_and_join() {
        let out = block_on(async {
            let h = crate::spawn(async { 7u32 });
            h.await.unwrap()
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn virtual_clock_is_exact() {
        block_on_paused(async {
            let t0 = crate::time::Instant::now();
            crate::time::sleep(Duration::from_millis(250)).await;
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            assert!((ms - 250.0).abs() < 1e-6, "elapsed {ms} ms");
        });
    }
}
