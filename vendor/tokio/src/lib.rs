//! Offline mini-`tokio`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a *small, deterministic* async runtime exposing the subset of
//! tokio's API the EGOIST protocol crate uses:
//!
//! * [`runtime::block_on`] / [`runtime::block_on_paused`] — a
//!   single-threaded executor. The paused variant starts with the clock
//!   frozen and **auto-advances virtual time** to the next timer deadline
//!   whenever every task is idle — the semantics of tokio's
//!   `#[tokio::test(start_paused = true)]`, which makes hour-long
//!   protocol runs finish in milliseconds, deterministically.
//! * [`spawn`] / [`task::spawn_blocking`] / [`task::JoinHandle`].
//! * [`time`] — `Instant` (virtual when paused), `sleep`, `sleep_until`,
//!   `timeout`, `interval_at` with `MissedTickBehavior`, `pause`.
//! * [`sync`] — unbounded mpsc and oneshot channels.
//! * [`net::UdpSocket`] — nonblocking std sockets polled by the executor.
//! * [`select!`] — biased polling in declaration order (2–6 branches).
//!
//! Single-threaded by design: spawned tasks do not require `Send`, and a
//! whole test (timers included) is reproducible run-to-run. Blocking
//! tasks run on real threads; while any is in flight the virtual clock
//! does not advance.

pub mod macros;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
