//! Async UDP over nonblocking std sockets.
//!
//! Readiness is implemented by executor polling: a future that hits
//! `WouldBlock` parks itself on the runtime's I/O waiter list and is
//! re-polled at millisecond cadence while the runtime is otherwise idle.
//! Crude next to epoll, but ample for loopback tests and examples.

use crate::runtime;
use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::task::{Context, Poll};

/// A UDP socket usable from async tasks.
#[derive(Debug)]
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`).
    pub async fn bind(addr: &str) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Send one datagram to `target`.
    pub async fn send_to(&self, buf: &[u8], target: SocketAddr) -> io::Result<usize> {
        SendTo {
            socket: &self.inner,
            buf,
            target,
        }
        .await
    }

    /// Receive one datagram.
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        RecvFrom {
            socket: &self.inner,
            buf,
        }
        .await
    }
}

struct SendTo<'a> {
    socket: &'a std::net::UdpSocket,
    buf: &'a [u8],
    target: SocketAddr,
}

impl Future for SendTo<'_> {
    type Output = io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.socket.send_to(self.buf, self.target) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                runtime::expect_current("UdpSocket::send_to", |ex| {
                    ex.register_io(cx.waker().clone());
                });
                Poll::Pending
            }
            other => Poll::Ready(other),
        }
    }
}

struct RecvFrom<'a> {
    socket: &'a std::net::UdpSocket,
    buf: &'a mut [u8],
}

impl Future for RecvFrom<'_> {
    type Output = io::Result<(usize, SocketAddr)>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = &mut *self;
        match me.socket.recv_from(me.buf) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                runtime::expect_current("UdpSocket::recv_from", |ex| {
                    ex.register_io(cx.waker().clone());
                });
                Poll::Pending
            }
            other => Poll::Ready(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn udp_loopback_roundtrip() {
        block_on(async {
            let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let ba = b.local_addr().unwrap();
            a.send_to(b"hello", ba).await.unwrap();
            let mut buf = [0u8; 64];
            let (len, from) = b.recv_from(&mut buf).await.unwrap();
            assert_eq!(&buf[..len], b"hello");
            assert_eq!(from, a.local_addr().unwrap());
        });
    }

    #[test]
    fn udp_recv_waits_for_late_sender() {
        block_on(async {
            let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let aa = a.local_addr().unwrap();
            crate::spawn(async move {
                crate::time::sleep(std::time::Duration::from_millis(20)).await;
                let s = UdpSocket::bind("127.0.0.1:0").await.unwrap();
                s.send_to(b"late", aa).await.unwrap();
            });
            let mut buf = [0u8; 16];
            let (len, _) = a.recv_from(&mut buf).await.unwrap();
            assert_eq!(&buf[..len], b"late");
        });
    }
}
