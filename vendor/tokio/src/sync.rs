//! Channels: unbounded mpsc and oneshot.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

pub mod mpsc {
    use super::*;

    struct Chan<T> {
        queue: VecDeque<T>,
        rx_waker: Option<Waker>,
        senders: usize,
        rx_alive: bool,
    }

    /// Sending half; clonable.
    pub struct UnboundedSender<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    /// Receiving half.
    pub struct UnboundedReceiver<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    /// The receiver was dropped; the value comes back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "channel closed")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Create an unbounded channel.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let chan = Arc::new(Mutex::new(Chan {
            queue: VecDeque::new(),
            rx_waker: None,
            senders: 1,
            rx_alive: true,
        }));
        (
            UnboundedSender {
                chan: Arc::clone(&chan),
            },
            UnboundedReceiver { chan },
        )
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().unwrap().senders += 1;
            UnboundedSender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            let mut ch = self.chan.lock().unwrap();
            ch.senders -= 1;
            if ch.senders == 0 {
                // Stream end: wake the receiver so recv() can yield None.
                if let Some(w) = ch.rx_waker.take() {
                    w.wake();
                }
            }
        }
    }

    impl<T> UnboundedSender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut ch = self.chan.lock().unwrap();
            if !ch.rx_alive {
                return Err(SendError(value));
            }
            ch.queue.push_back(value);
            if let Some(w) = ch.rx_waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            self.chan.lock().unwrap().rx_alive = false;
        }
    }

    /// Future returned by [`UnboundedReceiver::recv`].
    pub struct Recv<'a, T> {
        chan: &'a Arc<Mutex<Chan<T>>>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let mut ch = self.chan.lock().unwrap();
            if let Some(v) = ch.queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            if ch.senders == 0 {
                return Poll::Ready(None);
            }
            ch.rx_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> UnboundedReceiver<T> {
        /// Await the next value; `None` once all senders are gone.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { chan: &self.chan }
        }

        /// Non-blocking pop.
        pub fn try_recv(&mut self) -> Option<T> {
            self.chan.lock().unwrap().queue.pop_front()
        }
    }
}

pub mod oneshot {
    use super::*;

    struct Slot<T> {
        value: Option<T>,
        rx_waker: Option<Waker>,
        tx_gone: bool,
        rx_gone: bool,
    }

    /// Sending half (consumed by `send`).
    pub struct Sender<T> {
        slot: Arc<Mutex<Slot<T>>>,
    }

    /// Receiving half; a future of the sent value.
    pub struct Receiver<T> {
        slot: Arc<Mutex<Slot<T>>>,
    }

    /// The sender was dropped without sending.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "oneshot sender dropped")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let slot = Arc::new(Mutex::new(Slot {
            value: None,
            rx_waker: None,
            tx_gone: false,
            rx_gone: false,
        }));
        (
            Sender {
                slot: Arc::clone(&slot),
            },
            Receiver { slot },
        )
    }

    impl<T> Sender<T> {
        /// Deliver `value`; fails (returning it) if the receiver is gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut s = self.slot.lock().unwrap();
            if s.rx_gone {
                return Err(value);
            }
            s.value = Some(value);
            if let Some(w) = s.rx_waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.slot.lock().unwrap();
            s.tx_gone = true;
            if let Some(w) = s.rx_waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.slot.lock().unwrap().rx_gone = true;
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.slot.lock().unwrap();
            if let Some(v) = s.value.take() {
                return Poll::Ready(Ok(v));
            }
            if s.tx_gone {
                return Poll::Ready(Err(RecvError));
            }
            s.rx_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::block_on_paused;
    use std::time::Duration;

    #[test]
    fn mpsc_delivers_in_order() {
        block_on_paused(async {
            let (tx, mut rx) = super::mpsc::unbounded_channel();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
        });
    }

    #[test]
    fn mpsc_ends_when_senders_drop() {
        block_on_paused(async {
            let (tx, mut rx) = super::mpsc::unbounded_channel::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv().await, Some(9));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn mpsc_wakes_waiting_receiver() {
        block_on_paused(async {
            let (tx, mut rx) = super::mpsc::unbounded_channel();
            crate::spawn(async move {
                crate::time::sleep(Duration::from_secs(2)).await;
                tx.send(5u8).unwrap();
            });
            assert_eq!(rx.recv().await, Some(5));
        });
    }

    #[test]
    fn oneshot_roundtrip_and_drop_error() {
        block_on_paused(async {
            let (tx, rx) = super::oneshot::channel();
            tx.send(11u32).unwrap();
            assert_eq!(rx.await, Ok(11));

            let (tx2, rx2) = super::oneshot::channel::<u32>();
            drop(tx2);
            assert!(rx2.await.is_err());
        });
    }
}
