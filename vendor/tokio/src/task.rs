//! Task spawning and join handles.

use crate::runtime;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Handle to a spawned (or blocking) task; a future of its result.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

/// The task failed to produce a value (it panicked).
#[derive(Debug)]
pub struct JoinError;

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked")
    }
}

impl std::error::Error for JoinError {}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.lock().unwrap();
        if let Some(v) = st.result.take() {
            return Poll::Ready(Ok(v));
        }
        if st.finished {
            return Poll::Ready(Err(JoinError));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

fn new_state<T>() -> Arc<Mutex<JoinState<T>>> {
    Arc::new(Mutex::new(JoinState {
        result: None,
        waker: None,
        finished: false,
    }))
}

fn complete<T>(state: &Arc<Mutex<JoinState<T>>>, value: Option<T>) {
    let mut st = state.lock().unwrap();
    st.result = value;
    st.finished = true;
    if let Some(w) = st.waker.take() {
        w.wake();
    }
}

/// Spawn a future onto the current runtime.
///
/// Unlike upstream tokio the executor is single-threaded, so `Send` is
/// not required of the future.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = new_state();
    let st = Arc::clone(&state);
    runtime::expect_current("tokio::spawn", |exec| {
        exec.spawn_task(Box::pin(async move {
            let out = fut.await;
            complete(&st, Some(out));
        }));
    });
    JoinHandle { state }
}

/// Run a CPU-bound closure on a dedicated thread; the virtual clock does
/// not advance while it is in flight.
pub fn spawn_blocking<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let state = new_state();
    let st = Arc::clone(&state);
    let shared = runtime::expect_current("tokio::task::spawn_blocking", |exec| {
        Arc::clone(&exec.shared)
    });
    shared.blocking_inflight.fetch_add(1, Ordering::SeqCst);
    let shared2 = Arc::clone(&shared);
    std::thread::spawn(move || {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).ok();
        complete(&st, out);
        shared2.blocking_inflight.fetch_sub(1, Ordering::SeqCst);
        // Stir the driver so it notices completion promptly.
        shared2.notify(usize::MAX);
    });
    JoinHandle { state }
}

#[cfg(test)]
mod tests {
    use crate::runtime::block_on_paused;
    use std::time::Duration;

    #[test]
    fn spawn_blocking_result_arrives_under_paused_clock() {
        let out = block_on_paused(async {
            let h = super::spawn_blocking(|| {
                std::thread::sleep(Duration::from_millis(30));
                123u64
            });
            h.await.unwrap_or_default()
        });
        assert_eq!(out, 123);
    }

    #[test]
    fn panicked_blocking_task_yields_default_via_unwrap_or_default() {
        let out = block_on_paused(async {
            let h = super::spawn_blocking(|| -> u32 { panic!("boom") });
            h.await.unwrap_or_default()
        });
        assert_eq!(out, 0);
    }
}
