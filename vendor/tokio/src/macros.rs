//! The `select!` macro: biased polling in declaration order.
//!
//! Upstream tokio randomizes branch polling order unless `biased;` is
//! given; this mini version always polls in declaration order (i.e. it
//! treats every `select!` as biased), which is deterministic — exactly
//! what the protocol tests want. Futures are constructed fresh per call,
//! polled until one completes, then *all* are dropped before the winning
//! branch's handler runs (so handlers can freely borrow what the futures
//! borrowed).

/// Outcome of a 2-way select.
pub enum Sel2<A, B> {
    S1(A),
    S2(B),
}

/// Outcome of a 3-way select.
pub enum Sel3<A, B, C> {
    S1(A),
    S2(B),
    S3(C),
}

/// Outcome of a 4-way select.
pub enum Sel4<A, B, C, D> {
    S1(A),
    S2(B),
    S3(C),
    S4(D),
}

/// Outcome of a 5-way select.
pub enum Sel5<A, B, C, D, E> {
    S1(A),
    S2(B),
    S3(C),
    S4(D),
    S5(E),
}

/// Outcome of a 6-way select.
pub enum Sel6<A, B, C, D, E, F> {
    S1(A),
    S2(B),
    S3(C),
    S4(D),
    S5(E),
    S6(F),
}

/// Outcome of a 7-way select.
pub enum Sel7<A, B, C, D, E, F, G> {
    S1(A),
    S2(B),
    S3(C),
    S4(D),
    S5(E),
    S6(F),
    S7(G),
}

/// Wait on multiple futures, running the handler of the first to finish.
#[macro_export]
macro_rules! select {
    (biased; $($rest:tt)*) => {
        $crate::select! { $($rest)* }
    };
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block) => {{
        let __sel = {
            let mut __sf1 = ::std::pin::pin!($f1);
            let mut __sf2 = ::std::pin::pin!($f2);
            ::std::future::poll_fn(|__cx| {
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf1.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel2::S1(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf2.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel2::S2(v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __sel {
            $crate::macros::Sel2::S1($p1) => $b1,
            $crate::macros::Sel2::S2($p2) => $b2,
        }
    }};
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block
     $p3:pat = $f3:expr => $b3:block) => {{
        let __sel = {
            let mut __sf1 = ::std::pin::pin!($f1);
            let mut __sf2 = ::std::pin::pin!($f2);
            let mut __sf3 = ::std::pin::pin!($f3);
            ::std::future::poll_fn(|__cx| {
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf1.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel3::S1(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf2.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel3::S2(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf3.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel3::S3(v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __sel {
            $crate::macros::Sel3::S1($p1) => $b1,
            $crate::macros::Sel3::S2($p2) => $b2,
            $crate::macros::Sel3::S3($p3) => $b3,
        }
    }};
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block
     $p3:pat = $f3:expr => $b3:block $p4:pat = $f4:expr => $b4:block) => {{
        let __sel = {
            let mut __sf1 = ::std::pin::pin!($f1);
            let mut __sf2 = ::std::pin::pin!($f2);
            let mut __sf3 = ::std::pin::pin!($f3);
            let mut __sf4 = ::std::pin::pin!($f4);
            ::std::future::poll_fn(|__cx| {
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf1.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel4::S1(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf2.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel4::S2(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf3.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel4::S3(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf4.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel4::S4(v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __sel {
            $crate::macros::Sel4::S1($p1) => $b1,
            $crate::macros::Sel4::S2($p2) => $b2,
            $crate::macros::Sel4::S3($p3) => $b3,
            $crate::macros::Sel4::S4($p4) => $b4,
        }
    }};
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block
     $p3:pat = $f3:expr => $b3:block $p4:pat = $f4:expr => $b4:block
     $p5:pat = $f5:expr => $b5:block) => {{
        let __sel = {
            let mut __sf1 = ::std::pin::pin!($f1);
            let mut __sf2 = ::std::pin::pin!($f2);
            let mut __sf3 = ::std::pin::pin!($f3);
            let mut __sf4 = ::std::pin::pin!($f4);
            let mut __sf5 = ::std::pin::pin!($f5);
            ::std::future::poll_fn(|__cx| {
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf1.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel5::S1(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf2.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel5::S2(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf3.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel5::S3(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf4.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel5::S4(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf5.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel5::S5(v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __sel {
            $crate::macros::Sel5::S1($p1) => $b1,
            $crate::macros::Sel5::S2($p2) => $b2,
            $crate::macros::Sel5::S3($p3) => $b3,
            $crate::macros::Sel5::S4($p4) => $b4,
            $crate::macros::Sel5::S5($p5) => $b5,
        }
    }};
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block
     $p3:pat = $f3:expr => $b3:block $p4:pat = $f4:expr => $b4:block
     $p5:pat = $f5:expr => $b5:block $p6:pat = $f6:expr => $b6:block) => {{
        let __sel = {
            let mut __sf1 = ::std::pin::pin!($f1);
            let mut __sf2 = ::std::pin::pin!($f2);
            let mut __sf3 = ::std::pin::pin!($f3);
            let mut __sf4 = ::std::pin::pin!($f4);
            let mut __sf5 = ::std::pin::pin!($f5);
            let mut __sf6 = ::std::pin::pin!($f6);
            ::std::future::poll_fn(|__cx| {
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf1.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel6::S1(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf2.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel6::S2(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf3.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel6::S3(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf4.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel6::S4(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf5.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel6::S5(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf6.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel6::S6(v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __sel {
            $crate::macros::Sel6::S1($p1) => $b1,
            $crate::macros::Sel6::S2($p2) => $b2,
            $crate::macros::Sel6::S3($p3) => $b3,
            $crate::macros::Sel6::S4($p4) => $b4,
            $crate::macros::Sel6::S5($p5) => $b5,
            $crate::macros::Sel6::S6($p6) => $b6,
        }
    }};
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block
     $p3:pat = $f3:expr => $b3:block $p4:pat = $f4:expr => $b4:block
     $p5:pat = $f5:expr => $b5:block $p6:pat = $f6:expr => $b6:block
     $p7:pat = $f7:expr => $b7:block) => {{
        let __sel = {
            let mut __sf1 = ::std::pin::pin!($f1);
            let mut __sf2 = ::std::pin::pin!($f2);
            let mut __sf3 = ::std::pin::pin!($f3);
            let mut __sf4 = ::std::pin::pin!($f4);
            let mut __sf5 = ::std::pin::pin!($f5);
            let mut __sf6 = ::std::pin::pin!($f6);
            let mut __sf7 = ::std::pin::pin!($f7);
            ::std::future::poll_fn(|__cx| {
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf1.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel7::S1(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf2.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel7::S2(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf3.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel7::S3(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf4.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel7::S4(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf5.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel7::S5(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf6.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel7::S6(v));
                }
                if let ::std::task::Poll::Ready(v) = ::std::future::Future::poll(__sf7.as_mut(), __cx) {
                    return ::std::task::Poll::Ready($crate::macros::Sel7::S7(v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __sel {
            $crate::macros::Sel7::S1($p1) => $b1,
            $crate::macros::Sel7::S2($p2) => $b2,
            $crate::macros::Sel7::S3($p3) => $b3,
            $crate::macros::Sel7::S4($p4) => $b4,
            $crate::macros::Sel7::S5($p5) => $b5,
            $crate::macros::Sel7::S6($p6) => $b6,
            $crate::macros::Sel7::S7($p7) => $b7,
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::runtime::block_on_paused;
    use std::time::Duration;

    #[test]
    fn earliest_timer_wins() {
        let winner = block_on_paused(async {
            crate::select! {
                biased;
                _ = crate::time::sleep(Duration::from_secs(5)) => { "slow" }
                _ = crate::time::sleep(Duration::from_secs(1)) => { "fast" }
            }
        });
        assert_eq!(winner, "fast");
    }

    #[test]
    fn declaration_order_breaks_ties() {
        let winner = block_on_paused(async {
            crate::select! {
                _ = std::future::ready(()) => { 1 }
                _ = std::future::ready(()) => { 2 }
            }
        });
        assert_eq!(winner, 1);
    }

    #[test]
    fn channel_and_timer_race() {
        block_on_paused(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
            crate::spawn(async move {
                crate::time::sleep(Duration::from_secs(2)).await;
                tx.send(42u32).unwrap();
            });
            crate::select! {
                biased;
                v = rx.recv() => {
                    assert_eq!(v, Some(42));
                }
                _ = crate::time::sleep(Duration::from_secs(10)) => {
                    panic!("timer should not win");
                }
            }
        });
    }
}
