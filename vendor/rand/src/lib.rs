//! Offline mini-`rand`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the *subset* of the `rand` 0.9 API it actually uses, backed by
//! a deterministic xoshiro256++ generator. It is **not** the upstream
//! crate: streams differ from `rand`'s `StdRng`, but every consumer in
//! this repository only requires determinism and statistical quality, not
//! stream compatibility.
//!
//! Provided surface:
//!
//! * [`rngs::StdRng`] — the workspace's only generator.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`].
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a generator can produce directly via [`Rng::random`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

macro_rules! standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_from_u64!(u8, u16, i32, i64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in random_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                let span = (end as i128 - start as i128 + 1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range in random_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range!(f64, f32);

/// The user-facing generator API (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic. Replaces the
    /// upstream ChaCha12-based `StdRng` (streams are **not** compatible).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (only `shuffle` is used in this workspace).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.random_range(0..=4u32);
            assert!(w <= 4);
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, s, "50 elements virtually never shuffle to identity");
    }
}
