//! Offline mini-`rand_distr`.
//!
//! Implements the four distributions this workspace samples — Normal,
//! LogNormal, Pareto, Exp — over the vendored mini-`rand`. Sampling uses
//! Box–Muller (normals) and inverse transforms (Pareto, Exp); streams are
//! deterministic given the generator but not compatible with upstream
//! `rand_distr`.

use rand::{Rng, RngCore};

/// A sampleable distribution over `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistrError(&'static str);

impl core::fmt::Display for DistrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistrError {}

/// Draw a uniform in the *open* interval (0, 1) — keeps `ln` finite.
fn u_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 {
            return u;
        }
    }
}

/// Gaussian `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistrError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistrError("normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one draw per sample keeps the stream length
        // independent of caller pairing.
        let u1 = u_open(rng);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistrError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma).map_err(|_| DistrError("lognormal parameters"))?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Pareto with scale `x_m` and shape `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    pub fn new(scale: f64, shape: f64) -> Result<Self, DistrError> {
        if scale <= 0.0 || shape <= 0.0 || scale.is_nan() || shape.is_nan() {
            return Err(DistrError("pareto requires scale > 0 and shape > 0"));
        }
        Ok(Pareto { scale, shape })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = u_open(rng);
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Exponential with rate `lambda`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, DistrError> {
        if lambda <= 0.0 || lambda.is_nan() {
            return Err(DistrError("exp requires lambda > 0"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -u_open(rng).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(xs: &[f64]) -> (f64, f64) {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        (m, v)
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn exp_mean() {
        let d = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let (m, _) = moments(&xs);
        assert!((m - 2.0).abs() < 0.06, "mean {m}");
    }

    #[test]
    fn pareto_bounded_below_and_heavy_tailed() {
        let d = Pareto::new(1.5, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 1.5));
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 30.0, "heavy tail expected, max {max}");
    }

    #[test]
    fn lognormal_is_exp_of_normal() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Exp::new(0.0).is_err());
    }
}
