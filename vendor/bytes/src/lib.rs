//! Offline mini-`bytes`.
//!
//! A cheaply-cloneable immutable byte buffer ([`Bytes`]), a growable
//! builder ([`BytesMut`]) and the [`Buf`]/[`BufMut`] trait subset used by
//! the EGOIST codec. Big-endian accessors only, like upstream's default
//! `get_*`/`put_*` methods.

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write sink for byte data.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append `count` copies of `val`.
    fn put_bytes(&mut self, val: u8, count: usize) {
        for _ in 0..count {
            self.put_u8(val);
        }
    }
}

/// Immutable, cheaply-cloneable byte buffer with a consuming read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// Wrap a static slice (copies here; upstream borrows, but callers
    /// only rely on the value semantics).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
        }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(v),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end");
        self.start += n;
    }
}

/// Growable byte builder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0x4547);
        b.put_u8(1);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f32(2.5);
        b.put_bytes(0, 3);
        let mut r = b.freeze();
        assert_eq!(r.get_u16(), 0x4547);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f32(), 2.5);
        assert_eq!(r.remaining(), 3);
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut a = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.chunk(), &[3, 4]);
        assert_eq!(b.chunk(), &[1, 2, 3, 4]);
    }

    #[test]
    fn deref_and_eq() {
        let a = Bytes::from_static(b"ping");
        assert_eq!(&a[..], b"ping");
        assert_eq!(a, Bytes::copy_from_slice(b"ping"));
        assert_eq!(a.to_vec(), b"ping".to_vec());
    }
}
