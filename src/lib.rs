//! # EGOIST — overlay routing using selfish neighbor selection
//!
//! A from-scratch Rust reproduction of *EGOIST: Overlay Routing using
//! Selfish Neighbor Selection* (Smaragdakis, Laoutaris, Bestavros, Byers,
//! Roussopoulos; BUCS-TR-2007-013 / CoNEXT 2008): the complete system —
//! wiring policies, link-state overlay protocol, PlanetLab-like underlay
//! simulator, and the benchmark harness that regenerates every figure of
//! the paper's evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`obs`] | `egoist-obs` | deterministic spans, counters, histograms, flight recorder, JSON/Prometheus export |
//! | [`graph`] | `egoist-graph` | shortest/widest paths, max-flow, disjoint paths, cycles, efficiency |
//! | [`netsim`] | `egoist-netsim` | delay/bandwidth/load models, churn, event queue, fault injection |
//! | [`coord`] | `egoist-coord` | Vivaldi network coordinates (the paper's pyxida mode) |
//! | [`core`] | `egoist-core` | SNS policies (BR, BR(ε), HybridBR, heuristics), sampling, game dynamics, the epoch simulator |
//! | [`proto`] | `egoist-proto` | the async link-state protocol: codec, LSDB, bootstrap, node agent |
//! | [`traffic`] | `egoist-traffic` | the closed-loop data-plane workload engine: demand, flow routing, congestion feedback, traffic reports |
//!
//! ## Quick start
//!
//! Compare neighbor-selection policies on a 50-node PlanetLab-like
//! overlay (the Fig. 1 experiment, shrunk):
//!
//! ```
//! use egoist::core::policies::PolicyKind;
//! use egoist::core::sim::{run, Metric, SimConfig};
//!
//! let mut cfg = SimConfig::baseline(3, PolicyKind::BestResponse, Metric::DelayPing, 42);
//! cfg.n = 16;          // keep the doctest fast
//! cfg.epochs = 6;
//! cfg.warmup_epochs = 2;
//! let br = run(cfg.clone());
//!
//! cfg.policy = PolicyKind::Random;
//! let random = run(cfg);
//!
//! let (c_br, c_rnd) = (br.mean_individual_cost(2), random.mean_individual_cost(2));
//! assert!(c_br < c_rnd, "selfish wiring beats random: {c_br:.1} < {c_rnd:.1}");
//! ```
//!
//! Or run a *live* overlay over UDP — see `examples/live_overlay.rs`.
//!
//! ## Reproduction map
//!
//! Every figure of the paper has a regeneration binary in
//! `crates/bench/src/bin/`; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use egoist_coord as coord;
pub use egoist_core as core;
pub use egoist_graph as graph;
pub use egoist_netsim as netsim;
pub use egoist_obs as obs;
pub use egoist_proto as proto;
pub use egoist_traffic as traffic;

/// Workspace version, for tooling.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
